#pragma once

// IterationTrace and TraceRecorder: recorded computations of the elements
// iterator, in the paper's model (section 2): "A computation, i.e., program
// execution, is a sequence of alternating states and (atomic) transitions
// ... We consider the first call to an iterator as well as each resumption
// as an invocation of the iterator."
//
// Each invocation is recorded with the ground-truth observation at its
// pre-state AND post-state. The specs treat an invocation as one atomic
// transition; a real (distributed) invocation takes time, so the "state the
// operation acted on" lies somewhere in [pre, post]. Checkers therefore
// accept a predicate if it holds at either boundary (the witness rule),
// which is the faithful finite-observation reading of the atomic model.

#include <cassert>
#include <optional>
#include <vector>

#include "spec/observation.hpp"
#include "util/time.hpp"

namespace weakset::spec {

/// Supplies ground-truth observations: true membership (union of fragment
/// primaries) and true reachability for the observing client, at "now".
class GroundTruth {
 public:
  virtual ~GroundTruth() = default;
  [[nodiscard]] virtual SetObservation observe() const = 0;
  /// Can the observing client access `ref` right now? (Used to evaluate
  /// reachable(s_first)_σ for arbitrary σ, which Figures 3/4 need.)
  [[nodiscard]] virtual bool reachable(ObjectRef ref) const = 0;
  [[nodiscard]] virtual SimTime now() const = 0;
};

/// One invocation (the first call or a resumption) of the iterator.
class InvocationRecord {
 public:
  InvocationRecord(SimTime pre_time, SetObservation pre,
                   std::set<ObjectRef> pre_reachable_of_first,
                   SimTime post_time, SetObservation post,
                   std::set<ObjectRef> post_reachable_of_first,
                   StepOutcome outcome, std::optional<ObjectRef> element)
      : pre_time_(pre_time),
        pre_(std::move(pre)),
        pre_reachable_of_first_(std::move(pre_reachable_of_first)),
        post_time_(post_time),
        post_(std::move(post)),
        post_reachable_of_first_(std::move(post_reachable_of_first)),
        outcome_(outcome),
        element_(element) {}

  [[nodiscard]] SimTime pre_time() const noexcept { return pre_time_; }
  [[nodiscard]] SimTime post_time() const noexcept { return post_time_; }
  /// Ground truth at the invocation's pre-state.
  [[nodiscard]] const SetObservation& pre() const noexcept { return pre_; }
  /// Ground truth at the invocation's post-state.
  [[nodiscard]] const SetObservation& post() const noexcept { return post_; }
  /// reachable(s_first) evaluated at the pre-state: the first-state members
  /// the observer could access when this invocation started.
  [[nodiscard]] const std::set<ObjectRef>& pre_reachable_of_first()
      const noexcept {
    return pre_reachable_of_first_;
  }
  /// reachable(s_first) evaluated at the post-state.
  [[nodiscard]] const std::set<ObjectRef>& post_reachable_of_first()
      const noexcept {
    return post_reachable_of_first_;
  }
  [[nodiscard]] StepOutcome outcome() const noexcept { return outcome_; }
  /// The element yielded, iff outcome is kSuspended.
  [[nodiscard]] const std::optional<ObjectRef>& element() const noexcept {
    return element_;
  }

 private:
  SimTime pre_time_;
  SetObservation pre_;
  std::set<ObjectRef> pre_reachable_of_first_;
  SimTime post_time_;
  SetObservation post_;
  std::set<ObjectRef> post_reachable_of_first_;
  StepOutcome outcome_;
  std::optional<ObjectRef> element_;
};

/// The full recorded run of one use of the elements iterator, from the
/// first-state to the last-state.
class IterationTrace {
 public:
  IterationTrace() = default;
  IterationTrace(SimTime first_time, SetObservation first,
                 std::vector<InvocationRecord> invocations)
      : started_(true),
        first_time_(first_time),
        first_(std::move(first)),
        invocations_(std::move(invocations)) {}

  [[nodiscard]] bool started() const noexcept { return started_; }
  [[nodiscard]] SimTime first_time() const noexcept { return first_time_; }
  /// Ground truth in the state where the iterator was first called (s_first).
  [[nodiscard]] const SetObservation& first() const noexcept { return first_; }
  [[nodiscard]] const std::vector<InvocationRecord>& invocations()
      const noexcept {
    return invocations_;
  }

  /// The time of the last completed invocation's post-state (the last-state),
  /// or first_time if nothing ran.
  [[nodiscard]] SimTime last_time() const noexcept {
    return invocations_.empty() ? first_time_
                                : invocations_.back().post_time();
  }

  /// The yielded history object's final value: every element yielded, in
  /// yield order (duplicates preserved so checkers can flag them).
  [[nodiscard]] std::vector<ObjectRef> yield_sequence() const {
    std::vector<ObjectRef> out;
    for (const auto& inv : invocations_) {
      if (inv.outcome() == StepOutcome::kSuspended && inv.element()) {
        out.push_back(*inv.element());
      }
    }
    return out;
  }

  /// Outcome of the final invocation, or nullopt for an empty trace.
  [[nodiscard]] std::optional<StepOutcome> final_outcome() const {
    if (invocations_.empty()) return std::nullopt;
    return invocations_.back().outcome();
  }

 private:
  bool started_ = false;
  SimTime first_time_;
  SetObservation first_;
  std::vector<InvocationRecord> invocations_;
};

/// Builds an IterationTrace while an iterator runs. The iterator harness
/// calls begin() at the first call, observe_pre() at each invocation's entry,
/// and record() when the invocation completes.
class TraceRecorder {
 public:
  explicit TraceRecorder(const GroundTruth& truth) : truth_(truth) {}

  /// Captures the first-state. Must be called exactly once, before any
  /// invocation records.
  void begin() {
    assert(!began_);
    began_ = true;
    first_time_ = truth_.now();
    first_ = truth_.observe();
  }
  [[nodiscard]] bool began() const noexcept { return began_; }

  /// Re-captures the first-state at the current instant. An implementation
  /// acquires its s_first somewhere *inside* the first invocation (a read or
  /// an atomic snapshot cannot happen at the exact instant next() is
  /// entered); it calls this at its acquisition point — the consistent cut —
  /// so the specification's first-state matches the state the run is
  /// actually specified against. See DESIGN.md (witness rule discussion).
  void mark_first_state() {
    assert(began_);
    first_time_ = truth_.now();
    first_ = truth_.observe();
  }

  /// Captures the pre-state of an invocation (call at invocation entry).
  void observe_pre() {
    assert(began_);
    pre_time_ = truth_.now();
    pre_ = truth_.observe();
    pre_reachable_of_first_ = reachable_of_first();
  }

  /// Completes the current invocation record (call at invocation exit).
  void record(StepOutcome outcome, std::optional<ObjectRef> element) {
    assert(began_);
    invocations_.emplace_back(pre_time_, std::move(pre_),
                              std::move(pre_reachable_of_first_),
                              truth_.now(), truth_.observe(),
                              reachable_of_first(), outcome, element);
    pre_ = SetObservation{};
    pre_reachable_of_first_.clear();
  }

  /// The finished trace.
  [[nodiscard]] IterationTrace finish() const {
    assert(began_);
    return IterationTrace{first_time_, first_, invocations_};
  }

  /// Ground truth at s_first (available after begin()).
  [[nodiscard]] const SetObservation& first() const noexcept { return first_; }

 private:
  /// reachable(s_first) in the current state σ: which first-state members
  /// the observer can access right now.
  [[nodiscard]] std::set<ObjectRef> reachable_of_first() const {
    std::set<ObjectRef> out;
    for (const ObjectRef ref : first_.members()) {
      if (truth_.reachable(ref)) out.insert(ref);
    }
    return out;
  }

  const GroundTruth& truth_;
  bool began_ = false;
  SimTime first_time_;
  SetObservation first_;
  SimTime pre_time_;
  SetObservation pre_;
  std::set<ObjectRef> pre_reachable_of_first_;
  std::vector<InvocationRecord> invocations_;
};

}  // namespace weakset::spec
