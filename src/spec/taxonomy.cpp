#include "spec/taxonomy.hpp"

#include <algorithm>
#include <set>

namespace weakset::spec {
namespace {

/// a ⊆ b
bool subset(const std::set<ObjectRef>& a, const std::set<ObjectRef>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

}  // namespace

TaxonomyClass classify_taxonomy(const IterationTrace& trace,
                                const MembershipTimeline& timeline) {
  const SimTime first = trace.first_time();
  const SimTime last = trace.last_time();
  const std::set<ObjectRef> s_first = timeline.value_at(first);

  std::set<ObjectRef> yielded;
  for (const ObjectRef ref : trace.yield_sequence()) yielded.insert(ref);

  // Currency: first-vintage iff the yielded data reflects only the
  // first-state's membership; anything that surfaced a later addition is
  // first-bound.
  const bool only_first_state_data = subset(yielded, s_first);
  const Currency currency = only_first_state_data ? Currency::kFirstVintage
                                                  : Currency::kFirstBound;

  // Consistency: strong iff the set's value never changed during the run
  // (the result is trivially serializable at any point of it). Weak iff the
  // set changed but the yields are still one state's value — the
  // first-state's (a consistent-but-not-serializable snapshot). Otherwise
  // none: the yields mix states.
  Consistency consistency = Consistency::kNone;
  if (timeline.unchanged_in_window(first, last)) {
    consistency = Consistency::kStrong;
  } else if (only_first_state_data) {
    // All data is of the first-state; a snapshot query (possibly truncated
    // by reachability, which affects completeness, not consistency).
    consistency = Consistency::kWeak;
  }
  return TaxonomyClass{consistency, currency};
}

}  // namespace weakset::spec
