#pragma once

// MembershipTimeline: the ground-truth history of one collection's value
// over a whole computation — the σ_0 σ_1 ... σ_n sequence the paper's
// `constraint` clauses quantify over ("for all computations ... ∀ i < j :
// P(x_i, x_j)", section 2.2).
//
// Only *effective primary* mutations are recorded (replica convergence does
// not change the logical set's value). With the timeline we can decide, for
// any window [t0, t1]:
//   - immutability          (Figures 1 and 3:   s_i = s_j)
//   - grow-only             (Figure 5:          s_i ⊆ s_j)
//   - membership at a state (Figure 6's guarantee: e ∈ s_i for some i)

#include <algorithm>
#include <cassert>
#include <set>
#include <vector>

#include "store/collection.hpp"
#include "store/object.hpp"
#include "util/time.hpp"

namespace weakset::spec {

/// One timestamped ground-truth mutation of the logical set.
class TimelineEvent {
 public:
  TimelineEvent(SimTime at, CollectionOp::Kind kind, ObjectRef ref)
      : at_(at), kind_(kind), ref_(ref) {}

  [[nodiscard]] SimTime at() const noexcept { return at_; }
  [[nodiscard]] CollectionOp::Kind kind() const noexcept { return kind_; }
  [[nodiscard]] ObjectRef ref() const noexcept { return ref_; }

 private:
  SimTime at_;
  CollectionOp::Kind kind_;
  ObjectRef ref_;
};

class MembershipTimeline {
 public:
  /// Sets the membership at time zero (before any recorded event).
  void set_initial(std::set<ObjectRef> members) {
    assert(events_.empty());
    initial_ = std::move(members);
  }

  /// Appends an effective mutation. Times must be non-decreasing.
  void record(SimTime at, CollectionOp::Kind kind, ObjectRef ref) {
    assert(events_.empty() || events_.back().at() <= at);
    events_.emplace_back(at, kind, ref);
  }

  [[nodiscard]] const std::vector<TimelineEvent>& events() const noexcept {
    return events_;
  }

  /// The set's value at time `t` (inclusive of events at exactly `t`).
  [[nodiscard]] std::set<ObjectRef> value_at(SimTime t) const {
    std::set<ObjectRef> value = initial_;
    for (const TimelineEvent& event : events_) {
      if (event.at() > t) break;
      apply(value, event);
    }
    return value;
  }

  /// True iff `ref` is a member at some state σ_i with t0 <= time(σ_i) <= t1.
  /// This is Figure 6's guarantee: "any element yielded must actually be in
  /// the set, for some state of the set between the first-state and
  /// last-state."
  [[nodiscard]] bool present_in_window(ObjectRef ref, SimTime t0,
                                       SimTime t1) const {
    if (value_at(t0).count(ref) > 0) return true;
    for (const TimelineEvent& event : events_) {
      if (event.at() > t1) break;
      if (event.at() <= t0) continue;
      if (event.ref() == ref && event.kind() == CollectionOp::Kind::kAdd) {
        return true;
      }
    }
    return false;
  }

  /// True iff no effective mutation occurs strictly inside (t0, t1] — the
  /// constraint of Figures 1 and 3 restricted to the run window (the
  /// "less stringent" per-run variant discussed in section 3.1).
  [[nodiscard]] bool unchanged_in_window(SimTime t0, SimTime t1) const {
    return std::none_of(events_.begin(), events_.end(),
                        [&](const TimelineEvent& event) {
                          return event.at() > t0 && event.at() <= t1;
                        });
  }

  /// True iff only additions occur inside (t0, t1] — Figure 5's constraint
  /// (s_i ⊆ s_j) restricted to the run window.
  [[nodiscard]] bool grow_only_in_window(SimTime t0, SimTime t1) const {
    return std::none_of(events_.begin(), events_.end(),
                        [&](const TimelineEvent& event) {
                          return event.at() > t0 && event.at() <= t1 &&
                                 event.kind() == CollectionOp::Kind::kRemove;
                        });
  }

  /// Counts mutations inside (t0, t1].
  [[nodiscard]] std::size_t mutations_in_window(SimTime t0, SimTime t1) const {
    return static_cast<std::size_t>(
        std::count_if(events_.begin(), events_.end(),
                      [&](const TimelineEvent& event) {
                        return event.at() > t0 && event.at() <= t1;
                      }));
  }

 private:
  static void apply(std::set<ObjectRef>& value, const TimelineEvent& event) {
    if (event.kind() == CollectionOp::Kind::kAdd) {
      value.insert(event.ref());
    } else {
      value.erase(event.ref());
    }
  }

  std::set<ObjectRef> initial_;
  std::vector<TimelineEvent> events_;
};

}  // namespace weakset::spec
