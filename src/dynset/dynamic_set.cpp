#include "dynset/dynamic_set.hpp"

#include <algorithm>

namespace weakset {

std::unique_ptr<DynamicSet> DynamicSet::open(SetView& view,
                                             DynSetOptions options) {
  auto state = std::make_shared<State>(view, options);
  view.sim().spawn(engine(state));
  return std::unique_ptr<DynamicSet>{new DynamicSet{std::move(state)}};
}

void DynamicSet::close() {
  if (state_->stopped) return;
  state_->stopped = true;
  if (!state_->finished) {
    state_->finished = true;
    state_->arrivals.close();
  }
  // Terminal stats fold: one session's counters land in the registry once.
  const DynSetStats& s = state_->stats;
  obs::MetricsRegistry& m = state_->metrics;
  m.add("dynset.sessions");
  m.add("dynset.fetches_started", s.fetches_started);
  m.add("dynset.fetches_ok", s.fetches_ok);
  m.add("dynset.fetches_failed", s.fetches_failed);
  m.add("dynset.membership_reads", s.membership_reads);
  m.add("dynset.membership_read_failures", s.membership_read_failures);
}

Task<Step> DynamicSet::iterate() {
  assert(!state_->stopped && "iterate() after close()");
  if (state_->options.delivery == DeliveryOrder::kMembership) {
    Step step = co_await iterate_in_order();
    if (step.is_yield()) yielded_.push_back(step.ref());
    co_return step;
  }
  std::optional<Step> step = co_await state_->arrivals.pop();
  if (!step) co_return Step::finished();  // engine drained and closed
  if (step->is_yield()) yielded_.push_back(step->ref());
  co_return *step;
}

Task<Step> DynamicSet::iterate_in_order() {
  for (;;) {
    // Serve the next digest-order element if it has already arrived.
    if (next_in_order_ < state_->digest_order.size()) {
      const auto it = held_.find(state_->digest_order[next_in_order_]);
      if (it != held_.end()) {
        Step step = it->second;
        held_.erase(it);
        ++next_in_order_;
        co_return step;
      }
    }
    if (terminal_) {
      // The engine is done; drain any held elements (their predecessors
      // failed to arrive), then report the terminal outcome.
      while (next_in_order_ < state_->digest_order.size()) {
        const auto it = held_.find(state_->digest_order[next_in_order_]);
        ++next_in_order_;
        if (it != held_.end()) {
          Step step = it->second;
          held_.erase(it);
          co_return step;
        }
      }
      co_return *terminal_;
    }
    std::optional<Step> arrived = co_await state_->arrivals.pop();
    if (!arrived) {
      terminal_ = Step::finished();
      continue;
    }
    if (!arrived->is_yield()) {
      terminal_ = *arrived;
      continue;
    }
    held_.emplace(arrived->ref(), *arrived);
  }
}

Task<Result<std::vector<ObjectRef>>> DynamicSet::digest() {
  return state_->view->read_members();
}

bool DynamicSet::drained(const State& state) {
  return state.fetch_queue_.empty() && state.deferred.empty() &&
         state.in_flight == 0;
}

void DynamicSet::pump(const std::shared_ptr<State>& state) {
  while (state->in_flight < state->options.prefetch_depth &&
         !state->fetch_queue_.empty()) {
    const ObjectRef ref = state->fetch_queue_.front();
    state->fetch_queue_.pop_front();
    if (!state->view->is_reachable(ref)) {
      // Defer: optimism expects the failure to be repaired later.
      state->deferred.insert(ref);
      continue;
    }
    ++state->in_flight;
    ++state->stats.fetches_started;
    state->issue_seq[ref] = state->next_issue++;
    state->view->sim().spawn(fetch_one(state, ref));
  }
  // Occupancy after every pump: how full the prefetch pipeline actually
  // runs (depth-limited vs starved by the fetch queue).
  state->metrics.record_value("dynset.inflight",
                              static_cast<std::int64_t>(state->in_flight));
}

Task<void> DynamicSet::fetch_one(std::shared_ptr<State> state, ObjectRef ref) {
  Result<VersionedValue> value = co_await state->view->fetch(ref);
  --state->in_flight;
  if (state->stopped || state->finished) co_return;
  if (value) {
    ++state->stats.fetches_ok;
    state->made_progress = true;
    // Arrival order vs issue order: distance 0 means the pipeline delivered
    // in the closest-first order it was asked for.
    const std::uint64_t arrival = state->next_arrival++;
    const auto seq = state->issue_seq.find(ref);
    if (seq != state->issue_seq.end()) {
      const std::uint64_t issued = seq->second;
      const std::uint64_t distance =
          issued > arrival ? issued - arrival : arrival - issued;
      state->metrics.record_value(
          "dynset.arrival_order_distance",
          static_cast<std::int64_t>(distance));
      state->metrics.add(distance == 0 ? "dynset.in_order_arrivals"
                                       : "dynset.out_of_order_arrivals");
      state->issue_seq.erase(seq);
    }
    state->arrivals.push(Step::yielded(ref, std::move(value).value()));
  } else {
    ++state->stats.fetches_failed;
    state->issue_seq.erase(ref);
    state->deferred.insert(ref);
  }
  pump(state);
  if (drained(*state) && state->round_wake) {
    // Nothing left to do: wake the engine so a fresh confirming read can
    // close the session (or discover late growth) immediately.
    state->round_wake->try_set(true);
  }
}

Task<void> DynamicSet::engine(std::shared_ptr<State> state) {
  Simulator& sim = state->view->sim();
  const SimTime opened_at = sim.now();
  for (;;) {
    if (state->stopped || state->finished) co_return;

    // Session budget: stop starting new work once the time budget is spent.
    // Elements already in the arrival buffer still drain to the consumer.
    if (state->options.session_budget &&
        sim.now() - opened_at >= *state->options.session_budget) {
      state->finished = true;
      state->arrivals.push(Step::failed(
          Failure{FailureKind::kTimeout, "dynamic-set session budget spent"}));
      state->arrivals.close();
      co_return;
    }

    // Refresh membership: discover growth, and re-admit deferred elements
    // whose homes came back.
    ++state->stats.membership_reads;
    Result<std::vector<ObjectRef>> members =
        co_await state->view->read_members();
    if (state->stopped || state->finished) co_return;
    if (members) {
      for (const ObjectRef ref : members.value()) {
        if (state->seen.insert(ref).second) {
          state->fetch_queue_.push_back(ref);
          state->digest_order.push_back(ref);
          state->made_progress = true;  // discovered new work
        }
      }
    } else {
      ++state->stats.membership_read_failures;
    }
    for (auto it = state->deferred.begin(); it != state->deferred.end();) {
      if (state->view->is_reachable(*it)) {
        state->fetch_queue_.push_back(*it);
        it = state->deferred.erase(it);
      } else {
        ++it;
      }
    }

    if (state->options.order == PickOrder::kClosestFirst) {
      std::stable_sort(state->fetch_queue_.begin(), state->fetch_queue_.end(),
                       [&state](ObjectRef a, ObjectRef b) {
                         const auto da = state->view->distance(a);
                         const auto db = state->view->distance(b);
                         if (da && db) return *da < *db;
                         return da.has_value() && !db.has_value();
                       });
    }

    pump(state);

    // Close only against a fresh, successful read that surfaced no new work
    // (Figure 6 returns iff every member of s_pre has been yielded).
    if (members.has_value() && drained(*state)) {
      state->finished = true;
      state->arrivals.close();
      co_return;
    }

    // Blocking bound: count rounds in which nothing moved while undelivered
    // members remain.
    if (state->made_progress || state->in_flight > 0) {
      state->stalled_rounds = 0;
    } else {
      ++state->stalled_rounds;
      const RetryPolicy& retry = state->options.retry;
      if (!retry.is_forever() &&
          state->stalled_rounds >= retry.max_attempts()) {
        state->finished = true;
        state->arrivals.push(Step::failed(Failure{
            FailureKind::kExhausted,
            "dynamic set made no progress for the whole retry budget"}));
        state->arrivals.close();
        co_return;
      }
    }
    state->made_progress = false;

    // Sleep until the next round — or until a fetch worker reports that all
    // work ran dry and a confirming read should happen now. A session
    // budget clamps the sleep so expiry is handled on time.
    Duration sleep = state->options.membership_refresh;
    if (state->options.session_budget) {
      const Duration remaining =
          opened_at + *state->options.session_budget - sim.now();
      sleep = std::min(sleep, std::max(remaining, Duration::zero()));
    }
    state->round_wake.emplace(sim);
    OneShot<bool> wake = *state->round_wake;
    const auto timer = sim.schedule_cancellable(
        sleep, [wake]() mutable { wake.try_set(true); });
    (void)co_await state->round_wake->wait();
    timer.cancel();
    state->round_wake.reset();
  }
}

}  // namespace weakset
