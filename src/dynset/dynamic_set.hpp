#pragma once

// Dynamic sets: the Unix-API set abstraction of Steere's thesis work, which
// the paper presents as its motivating implementation (section 1.1) and whose
// semantics is the Figure 6 (optimistic) specification (section 5).
//
// "By removing this requirement [access all files before ls returns], we gain
// two advantages: (1) We can return information to the user more quickly by
// yielding partial information about the contents of a directory; and (2) we
// can implement such file system commands more efficiently by fetching files
// in parallel, fetching 'closer' files first, and fetching all accessible
// files despite network failures."
//
// DynamicSet implements exactly that: open() starts a prefetch engine that
// reads membership, orders candidates closest-first, and keeps up to
// `prefetch_depth` fetches in flight; iterate() delivers elements in
// *arrival* order (not membership order); digest() lists membership without
// fetching contents; close() stops the engine.
//
// Availability nuance: an element fetched before a partition arose is served
// from the client's prefetch buffer even if its home is now unreachable —
// the cached copy *is* accessible. This is deliberate (it is the
// availability win of prefetching) and is called out in EXPERIMENTS.md when
// comparing against the literal Figure 6 predicate, which consults only the
// network failure detector.
//
// Lifetime: the SetView must outlive the engine; call close() and drain the
// simulator (or destroy the DynamicSet only after the run) before tearing
// the view down.

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/iterator.hpp"
#include "core/set_view.hpp"
#include "obs/metrics.hpp"
#include "sim/channel.hpp"

namespace weakset {

/// How iterate() orders deliveries. The paper's weak sets drop ordering
/// ("Order among elements does not matter. Hence retrieval of elements can
/// be optimized", section 1): kArrival exploits that. kMembership restores a
/// deterministic order (the digest order) by holding back out-of-order
/// arrivals — the cost of the ordering constraint is measured in bench E8.
enum class DeliveryOrder { kArrival, kMembership };

struct DynSetOptions {
  /// Maximum concurrent fetches in flight.
  std::size_t prefetch_depth = 4;
  /// Delivery ordering for iterate().
  DeliveryOrder delivery = DeliveryOrder::kArrival;
  /// Candidate ordering for the fetch queue.
  PickOrder order = PickOrder::kClosestFirst;
  /// How long the engine tolerates rounds without progress while known
  /// members remain undelivered (Figure 6 blocking). forever() blocks
  /// literally; a bounded policy ends the session with kExhausted.
  RetryPolicy retry = RetryPolicy{50, Duration::millis(100)};
  /// Engine round interval: membership refresh and deferred-retry cadence.
  Duration membership_refresh = Duration::millis(200);
  /// Best-effort time budget for the whole session: once elapsed, already-
  /// fetched elements still drain through iterate(), then the session ends
  /// with kTimeout. nullopt: no budget. (The interactive-latency knob of the
  /// dynamic-sets design: a user waits only so long for a directory page.)
  std::optional<Duration> session_budget;
  /// Telemetry sink: in-flight occupancy histogram, arrival-order counters,
  /// terminal DynSetStats fold. nullptr = the process-global registry.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Counters of one dynamic-set session (used by the latency benchmarks).
struct DynSetStats {
  std::uint64_t fetches_started = 0;
  std::uint64_t fetches_ok = 0;
  std::uint64_t fetches_failed = 0;
  std::uint64_t membership_reads = 0;
  std::uint64_t membership_read_failures = 0;
};

class DynamicSet {
 public:
  /// setOpen: binds to a membership source and starts the prefetch engine.
  static std::unique_ptr<DynamicSet> open(SetView& view,
                                          DynSetOptions options = {});

  ~DynamicSet() { close(); }
  DynamicSet(const DynamicSet&) = delete;
  DynamicSet& operator=(const DynamicSet&) = delete;

  /// setIterate: the next element whose contents have arrived (any order).
  /// Yields; or finishes once every visible member has been delivered; or —
  /// with a bounded retry policy — fails with kExhausted when progress
  /// stayed blocked for the whole budget.
  Task<Step> iterate();

  /// setDigest: one loose read of the current visible membership, without
  /// fetching contents.
  Task<Result<std::vector<ObjectRef>>> digest();

  /// setClose: stops the engine (idempotent).
  void close();

  [[nodiscard]] const DynSetStats& stats() const noexcept {
    return state_->stats;
  }
  /// Elements delivered through iterate() so far, in delivery order.
  [[nodiscard]] const std::vector<ObjectRef>& yielded() const noexcept {
    return yielded_;
  }

 private:
  /// Engine state shared with the detached engine/fetch coroutines, so a
  /// DynamicSet may be destroyed while a last wakeup is still queued.
  struct State {
    State(SetView& view, DynSetOptions options)
        : view(&view),
          options(options),
          metrics(obs::sink(options.metrics)),
          arrivals(view.sim()) {}

    SetView* view;
    DynSetOptions options;
    obs::MetricsRegistry& metrics;
    DynSetStats stats;
    /// Fetch issue order (sequence number per in-flight ref) vs completion
    /// order: how far the pipeline reorders arrivals (closest-first works
    /// when near elements really do land before far ones).
    std::unordered_map<ObjectRef, std::uint64_t> issue_seq;
    std::uint64_t next_issue = 0;
    std::uint64_t next_arrival = 0;

    std::deque<ObjectRef> fetch_queue_;
    std::unordered_set<ObjectRef> seen;      // queued, in flight, delivered
    std::unordered_set<ObjectRef> deferred;  // unreachable; retried later
    std::size_t in_flight = 0;
    std::size_t stalled_rounds = 0;
    bool made_progress = false;  // since the last engine round
    bool stopped = false;   // close() called
    bool finished = false;  // arrivals closed (drained or exhausted)

    AsyncQueue<Step> arrivals;
    /// Membership (digest) order for kMembership delivery: every member in
    /// discovery order.
    std::vector<ObjectRef> digest_order;
    /// Set while the engine sleeps between rounds; fetch workers complete it
    /// to wake the engine early (e.g. when the last fetch lands, so a fresh
    /// confirming read can close the session without waiting a full round).
    std::optional<OneShot<bool>> round_wake;
  };

  explicit DynamicSet(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  static Task<void> engine(std::shared_ptr<State> state);
  static Task<void> fetch_one(std::shared_ptr<State> state, ObjectRef ref);
  /// Starts fetches until the depth limit or the queue is exhausted.
  static void pump(const std::shared_ptr<State>& state);
  /// True when no queued, deferred, or in-flight work remains. The engine
  /// closes the session only when this holds against a *fresh* successful
  /// membership read (Figure 6 returns iff s_pre ⊆ yielded).
  static bool drained(const State& state);

  /// kMembership delivery: the next in-order step, holding back early
  /// arrivals until their turn.
  Task<Step> iterate_in_order();

  std::shared_ptr<State> state_;
  std::vector<ObjectRef> yielded_;
  // kMembership delivery state.
  std::unordered_map<ObjectRef, Step> held_;
  std::size_t next_in_order_ = 0;
  std::optional<Step> terminal_;  // finished/failed seen while draining held_
};

}  // namespace weakset
