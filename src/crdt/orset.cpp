#include "crdt/orset.hpp"

namespace weakset::crdt {

DotContext DotContext::from_parts(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& vector_entries,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& cloud_dots) {
  DotContext ctx;
  for (const auto& [origin, counter] : vector_entries) {
    ctx.vv_[origin] = counter;
  }
  for (const auto& [origin, counter] : cloud_dots) {
    ctx.cloud_.insert(Dot{origin, counter});
  }
  ctx.compact();
  return ctx;
}

void DotContext::add(Dot dot) {
  if (contains(dot)) return;
  const auto it = vv_.find(dot.origin());
  if (dot.counter() == (it == vv_.end() ? 0 : it->second) + 1) {
    // Extends the contiguous prefix directly; cloud dots may now follow.
    vv_[dot.origin()] = dot.counter();
    compact();
    return;
  }
  cloud_.insert(dot);
}

void DotContext::merge(const DotContext& other) {
  for (const auto& [origin, counter] : other.vector()) {
    auto& mine = vv_[origin];
    if (counter > mine) mine = counter;
  }
  cloud_.insert(other.cloud().begin(), other.cloud().end());
  compact();
}

void DotContext::compact() {
  // The cloud is sorted by (origin, counter), so one pass suffices: each
  // dot either extends its origin's prefix by exactly one, is already
  // covered, or stays in the cloud (a gap remains before it).
  for (auto it = cloud_.begin(); it != cloud_.end();) {
    auto& prefix = vv_[it->origin()];
    if (it->counter() == prefix + 1) {
      prefix = it->counter();
      it = cloud_.erase(it);
    } else if (it->counter() <= prefix) {
      it = cloud_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<DotOp> OrSet::add(ObjectRef element) {
  if (contains(element)) return {};
  const Dot dot{origin_, ++counter_};
  std::vector<DotOp> ops;
  ops.emplace_back(DotOp::Kind::kInsert, element, dot);
  apply(ops.back());
  return ops;
}

std::vector<DotOp> OrSet::remove(ObjectRef element) {
  const auto it = live_.find(element);
  if (it == live_.end()) return {};
  std::vector<DotOp> ops;
  ops.reserve(it->second.size());
  for (const Dot dot : it->second) {
    ops.emplace_back(DotOp::Kind::kKill, element, dot);
  }
  for (const DotOp& op : ops) apply(op);
  return ops;
}

bool OrSet::apply(const DotOp& op) {
  if (op.kind() == DotOp::Kind::kInsert) {
    if (ctx_.contains(op.dot())) return false;  // seen (live or killed)
    ctx_.add(op.dot());
    auto& dots = live_[op.element()];
    dots.insert(op.dot());
    if (dots.size() == 1) ++version_;  // element appeared
    return true;
  }
  // Kill: cover the dot and drop it from the live store if present. A kill
  // whose insert we never saw still changes state — the context coverage is
  // what makes the insert a no-op when (if ever) it arrives.
  const auto it = live_.find(op.element());
  if (it != live_.end() && it->second.erase(op.dot()) > 0) {
    ctx_.add(op.dot());
    if (it->second.empty()) {
      live_.erase(it);
      ++version_;  // element disappeared
    }
    return true;
  }
  if (ctx_.contains(op.dot())) return false;  // already covered, already dead
  ctx_.add(op.dot());
  return true;
}

std::vector<DotOp> OrSet::join(const DotContext& remote_context,
                               const std::vector<DotOp>& remote_live) {
  std::vector<DotOp> applied;
  // Kills first: any of my live dots the peer's context covers but the
  // peer's live set lacks was removed somewhere — kill it here.
  std::set<Dot> remote_live_dots;
  for (const DotOp& op : remote_live) remote_live_dots.insert(op.dot());
  std::vector<DotOp> kills;
  for (const auto& [element, dots] : live_) {
    for (const Dot dot : dots) {
      if (remote_context.contains(dot) && remote_live_dots.count(dot) == 0) {
        kills.emplace_back(DotOp::Kind::kKill, element, dot);
      }
    }
  }
  for (const DotOp& op : kills) {
    if (apply(op)) applied.push_back(op);
  }
  // Then the peer's live dots we have not observed yet.
  for (const DotOp& op : remote_live) {
    const DotOp insert{DotOp::Kind::kInsert, op.element(), op.dot()};
    if (apply(insert)) applied.push_back(insert);
  }
  // Finally adopt the peer's full coverage, so dots born-and-killed on the
  // other side (never shipped as ops) are dead here too.
  ctx_.merge(remote_context);
  return applied;
}

std::vector<ObjectRef> OrSet::members() const {
  std::vector<ObjectRef> out;
  out.reserve(live_.size());
  for (const auto& [element, dots] : live_) out.push_back(element);
  return out;
}

std::vector<DotOp> OrSet::export_live() const {
  std::vector<DotOp> out;
  for (const auto& [element, dots] : live_) {
    for (const Dot dot : dots) {
      out.emplace_back(DotOp::Kind::kInsert, element, dot);
    }
  }
  return out;
}

}  // namespace weakset::crdt
