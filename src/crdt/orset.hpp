#pragma once

// Optimized observed-remove set (OR-Set) — the CRDT replication substrate
// for ReplicationMode::kOrSet (DESIGN.md decision 16, ROADMAP item 2).
//
// The formulation follows Bieniusa et al., "An Optimized Conflict-free
// Replicated Set" (PAPERS.md): every insertion is tagged with a globally
// unique *dot* (origin replica, per-origin counter), removals kill the
// observed dots, and a per-replica *dot context* — a version vector plus a
// cloud of out-of-order dots — records every dot ever seen. Because the
// context remembers killed dots, no tombstone set is needed: a kill simply
// erases the live dot, and a late-arriving insert for a dot the context
// already covers is a no-op. The cloud compacts into the version vector as
// dots become contiguous, so context size is O(origins), not O(operations).
//
// Replication is a stream of dot-level operations (DotOp): insert(e, d) and
// kill(e, d). Each DotOp is idempotent and the pair for one dot commutes
// (insert-then-kill and kill-then-insert both end with the dot dead and
// covered), so replicas applying the same set of DotOps in any order, any
// number of times, converge to the same state — the property the server's
// anti-entropy machinery leans on: per-peer cursors advance optimistically
// and a missed range is repaired by a later full-state join.
//
// Membership is the set of elements with at least one live dot. The live-dot
// store is an ordered map, so members() is sorted — replicas that converged
// report byte-identical member vectors regardless of arrival order, which is
// exactly what spec::check_converged asserts.

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "store/object.hpp"

namespace weakset::crdt {

/// A globally unique event identifier: the `counter`-th operation tagged by
/// replica `origin`. Origins encode the node id salted with the fragment
/// incarnation (see make_origin), so a replica recovering from an amnesia
/// crash — having forgotten how many dots it minted — never reuses a dot.
class Dot {
 public:
  Dot() = default;
  Dot(std::uint64_t origin, std::uint64_t counter)
      : origin_(origin), counter_(counter) {}

  [[nodiscard]] std::uint64_t origin() const noexcept { return origin_; }
  [[nodiscard]] std::uint64_t counter() const noexcept { return counter_; }

  friend constexpr auto operator<=>(Dot, Dot) = default;

 private:
  std::uint64_t origin_ = 0;
  std::uint64_t counter_ = 0;
};

/// Origin id for a replica: node id in the high bits, fragment incarnation
/// in the low 16. An amnesia recovery bumps the incarnation, moving the
/// replica onto a fresh dot namespace.
[[nodiscard]] constexpr std::uint64_t make_origin(
    std::uint64_t node_raw, std::uint64_t incarnation) noexcept {
  return (node_raw << 16) | (incarnation & 0xffff);
}

/// The set of dots a replica has ever observed, compressed: a version vector
/// (per-origin contiguous prefix) plus a cloud of dots received out of
/// order. This is the "optimized" part of the optimized OR-Set — covered
/// dots are forgotten individually, so there is no per-removal tombstone.
class DotContext {
 public:
  /// Rebuilds a context from its wire form: version-vector entries as
  /// (origin, counter) pairs and cloud dots likewise.
  static DotContext from_parts(
      const std::vector<std::pair<std::uint64_t, std::uint64_t>>&
          vector_entries,
      const std::vector<std::pair<std::uint64_t, std::uint64_t>>& cloud_dots);

  [[nodiscard]] bool contains(Dot dot) const {
    const auto it = vv_.find(dot.origin());
    if (it != vv_.end() && dot.counter() <= it->second) return true;
    return cloud_.count(dot) > 0;
  }

  /// Records `dot` as observed.
  void add(Dot dot);

  /// Union with another context (vector entries max-wise, clouds unioned).
  void merge(const DotContext& other);

  /// Per-origin contiguous prefix (origin -> highest covered counter).
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& vector()
      const noexcept {
    return vv_;
  }
  /// Dots observed beyond the contiguous prefix.
  [[nodiscard]] const std::set<Dot>& cloud() const noexcept { return cloud_; }

 private:
  /// Folds cloud dots that extend an origin's contiguous prefix into the
  /// version vector and drops cloud dots the vector already covers.
  void compact();

  std::map<std::uint64_t, std::uint64_t> vv_;
  std::set<Dot> cloud_;
};

/// One dot-level replication operation. The unit of the wire protocol
/// (orset.pull / orset.sync), of the outbound anti-entropy log, and of the
/// WAL records (kOrSetInsert / kOrSetKill) — one representation end to end.
class DotOp {
 public:
  enum class Kind : std::uint8_t { kInsert, kKill };

  DotOp() = default;
  DotOp(Kind kind, ObjectRef element, Dot dot)
      : kind_(kind), element_(element), dot_(dot) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] ObjectRef element() const noexcept { return element_; }
  [[nodiscard]] Dot dot() const noexcept { return dot_; }

  friend bool operator==(const DotOp&, const DotOp&) = default;

 private:
  Kind kind_ = Kind::kInsert;
  ObjectRef element_;
  Dot dot_;
};

/// Replicated set state for one fragment hosted under kOrSet mode. Local
/// mutations (add/remove) mint or kill dots and return the resulting DotOps
/// for the caller to log and replicate; remote ops arrive through apply();
/// anti-entropy resync arrives through join().
class OrSet {
 public:
  explicit OrSet(CollectionId id) : id_(id) {}

  [[nodiscard]] CollectionId id() const noexcept { return id_; }

  /// Moves this replica onto a fresh dot namespace (amnesia recovery: the
  /// local counter restarts, which is safe exactly because the origin is
  /// new). Dots already minted under previous origins are unaffected.
  void set_origin(std::uint64_t origin) noexcept {
    origin_ = origin;
    counter_ = 0;
  }
  [[nodiscard]] std::uint64_t origin() const noexcept { return origin_; }

  /// Local add. Already a member: no-op, returns {} (parity with
  /// CollectionState::add returning false — the repository's sets are
  /// membership-observed, so a duplicate add does not mint a fresh tag).
  /// Otherwise mints one dot and returns the insert op, already applied.
  [[nodiscard]] std::vector<DotOp> add(ObjectRef element);

  /// Local remove. Not a member: no-op, returns {}. Otherwise kills every
  /// observed live dot of the element (the OR-Set remove: concurrent inserts
  /// whose dots we have not seen survive) and returns the kill ops, already
  /// applied.
  [[nodiscard]] std::vector<DotOp> remove(ObjectRef element);

  /// Applies one (possibly remote, possibly duplicate) dot op. Returns true
  /// iff state changed — the caller's cue to WAL the op. A kill for a dot
  /// whose insert was never seen still changes state (the context must cover
  /// the dot so the insert is dead on arrival) without touching membership.
  bool apply(const DotOp& op);

  /// Full-state merge with a peer's context and live set (anti-entropy
  /// fallback when the peer's op log no longer reaches our cursor). Every
  /// state change is expressed as a DotOp and applied through apply(); the
  /// applied ops are returned for WAL logging. Afterwards the remote context
  /// is merged wholesale, so dots the peer saw born-and-killed are covered
  /// here too.
  std::vector<DotOp> join(const DotContext& remote_context,
                          const std::vector<DotOp>& remote_live);

  [[nodiscard]] bool contains(ObjectRef element) const {
    return live_.count(element) > 0;
  }
  [[nodiscard]] std::size_t size() const noexcept { return live_.size(); }

  /// Current members, sorted (the live-dot store is an ordered map) — the
  /// canonical order every converged replica reports identically.
  [[nodiscard]] std::vector<ObjectRef> members() const;

  /// Bumped on every effective *membership* change (an element appearing or
  /// disappearing); context-only changes do not count. Serves the same role
  /// as CollectionState::version for snapshot/delta read replies.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  [[nodiscard]] const DotContext& context() const noexcept { return ctx_; }

  /// Every live (element, dot) pair as insert ops, in canonical order — the
  /// live half of a full-state reply.
  [[nodiscard]] std::vector<DotOp> export_live() const;

 private:
  CollectionId id_;
  std::uint64_t origin_ = 0;
  std::uint64_t counter_ = 0;
  std::map<ObjectRef, std::set<Dot>> live_;
  DotContext ctx_;
  std::uint64_t version_ = 0;
};

}  // namespace weakset::crdt
