#pragma once

// MoveFunc: a move-only std::function<void()> replacement (std::move_only_
// function is C++23). The simulator's event queue stores these so events can
// own move-only state such as coroutine tasks.

#include <memory>
#include <utility>

namespace weakset {

/// Type-erased move-only nullary callable.
class MoveFunc {
 public:
  MoveFunc() = default;

  template <typename F>
  MoveFunc(F fn) : impl_(std::make_unique<Impl<F>>(std::move(fn))) {}  // NOLINT

  MoveFunc(MoveFunc&&) noexcept = default;
  MoveFunc& operator=(MoveFunc&&) noexcept = default;
  MoveFunc(const MoveFunc&) = delete;
  MoveFunc& operator=(const MoveFunc&) = delete;

  explicit operator bool() const noexcept { return impl_ != nullptr; }

  void operator()() { impl_->call(); }

 private:
  struct Base {
    virtual ~Base() = default;
    virtual void call() = 0;
  };
  template <typename F>
  struct Impl final : Base {
    explicit Impl(F fn) : fn(std::move(fn)) {}
    void call() override { fn(); }
    F fn;
  };
  std::unique_ptr<Base> impl_;
};

}  // namespace weakset
