#pragma once

// BlockPool: size-class free lists over an arena, for the simulator's
// fixed-rhythm allocations — coroutine frames, RPC payload boxes, OneShot
// states. A block is carved from the process-global Arena the first time its
// size class is empty and recycled through the free list forever after, so a
// steady-state simulation (same frames, same messages, over and over)
// performs zero global-allocator calls on these paths.
//
// Blocks above kMaxPooled bytes fall through to operator new/delete: pooling
// is an optimisation, never a size limit. Memory is returned to the OS only
// at process exit, which is the right trade for bounded-lifetime simulation
// processes.
//
// Threading (DESIGN.md decision 14): each pool's state is thread_local, so
// the parallel engine's shard workers never contend or race on free lists. A
// block may be allocated on one thread and freed on another (a cross-shard
// message's payload, say); it simply joins the freeing thread's free list —
// arena memory is never returned, so ownership of a block is just a pointer
// in somebody's list. Each per-thread state is registered with
// detail::keep_reachable so leak checkers still classify pool memory as
// still-reachable after a worker thread (and its thread_local pointer) exits.
//
// VectorPool<T> recycles whole std::vector<T> objects (capacity and all) for
// the store's reply buffers — member lists and op batches that are built on
// a server, shipped through a Payload, and drained on the client.

#include <cstddef>
#include <vector>

#include "util/arena.hpp"

namespace weakset {

namespace detail {
/// Parks a heap pointer in a process-global registry so it stays reachable
/// forever. Called once per thread per pool type (never on a hot path).
void keep_reachable(void* pointer);
}  // namespace detail

class BlockPool {
 public:
  static constexpr std::size_t kGranule = 64;
  static constexpr std::size_t kClasses = 32;  // pooled sizes: 64 B .. 2 KiB
  static constexpr std::size_t kMaxPooled = kGranule * kClasses;

  static void* allocate(std::size_t size) {
    const std::size_t cls = class_of(size);
    if (cls >= kClasses) return ::operator new(size);
    State& state = instance();
    void*& head = state.free_heads[cls];
    if (head != nullptr) {
      void* block = head;
      head = *static_cast<void**>(block);
      return block;
    }
    return state.arena.allocate((cls + 1) * kGranule,
                                alignof(std::max_align_t));
  }

  static void deallocate(void* block, std::size_t size) noexcept {
    if (block == nullptr) return;
    const std::size_t cls = class_of(size);
    if (cls >= kClasses) {
      ::operator delete(block);
      return;
    }
    State& state = instance();
    *static_cast<void**>(block) = state.free_heads[cls];
    state.free_heads[cls] = block;
  }

  /// Arena bytes handed out so far by this thread's pool (diagnostics/tests).
  static std::size_t arena_bytes() {
    return instance().arena.bytes_allocated();
  }

 private:
  struct State {
    Arena arena;
    void* free_heads[kClasses] = {};
  };

  static std::size_t class_of(std::size_t size) noexcept {
    // size 0..64 -> class 0, 65..128 -> 1, ...; sizes > kMaxPooled map past
    // the last class and take the operator-new path.
    return size == 0 ? 0 : (size - 1) / kGranule;
  }

  static State& instance() {
    // One State per thread, truly leaked (never destroyed): pooled blocks can
    // be freed from other static-duration objects' destructors, which must
    // not race the pool's own teardown, and blocks freed cross-thread must
    // not dangle when the allocating thread exits. keep_reachable parks the
    // pointer so leak checkers classify the memory as still-reachable even
    // after the thread_local pointer itself is gone.
    static thread_local State* state = [] {
      auto* fresh = new State;
      detail::keep_reachable(fresh);
      return fresh;
    }();
    return *state;
  }
};

/// std::allocator-compatible adapter over BlockPool, for allocate_shared of
/// hot-path control blocks (e.g. OneShot state).
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(BlockPool::allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    BlockPool::deallocate(p, n * sizeof(T));
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
};

/// Free list of whole vectors: acquire() hands back a cleared vector with
/// its old capacity intact, release() parks it for the next acquirer. The
/// list is bounded — beyond kMaxParked vectors are simply destroyed.
template <typename T>
class VectorPool {
 public:
  static std::vector<T> acquire() {
    auto& parked = freelist();
    if (parked.empty()) return {};
    std::vector<T> v = std::move(parked.back());
    parked.pop_back();
    v.clear();
    return v;
  }

  static void release(std::vector<T> v) {
    auto& parked = freelist();
    if (parked.size() < kMaxParked) {
      v.clear();
      parked.push_back(std::move(v));
    }
  }

 private:
  static constexpr std::size_t kMaxParked = 64;
  static std::vector<std::vector<T>>& freelist() {
    // Per-thread and leaked like BlockPool::instance(): release() must stay
    // callable from static-duration destructors in any order, and shard
    // workers must never contend on the list.
    static thread_local auto* parked = [] {
      auto* fresh = new std::vector<std::vector<T>>;
      detail::keep_reachable(fresh);
      return fresh;
    }();
    return *parked;
  }
};

}  // namespace weakset
