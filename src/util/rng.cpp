#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

namespace weakset {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed all 256 bits of state via splitmix64, per the xoshiro authors'
  // recommendation; guarantees a non-zero state.
  for (auto& word : state_) word = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection: retry while in the biased low band.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_double() {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_double() < p;
}

Duration Rng::exponential(Duration mean) {
  // Inverse CDF; clamp the uniform away from 0 to keep log finite.
  const double u = std::max(uniform_double(), 0x1.0p-60);
  const double nanos = -std::log(u) * static_cast<double>(mean.count_nanos());
  return Duration::nanos(static_cast<std::int64_t>(nanos));
}

Duration Rng::uniform_duration(Duration lo, Duration hi) {
  return Duration::nanos(uniform_range(lo.count_nanos(), hi.count_nanos()));
}

Rng Rng::fork() { return Rng{next_u64()}; }

}  // namespace weakset
