#pragma once

// Shard context for the parallel discrete-event engine (DESIGN.md decision
// 14). Simulation state is partitioned into node-affine shards; every thread
// carries a "current shard" index that routes schedule() calls, metrics
// recordings, and RNG draws to the shard that owns the executing event.
//
// In the classic single-threaded mode the current shard is always 0 and
// nothing here has any effect; the sharded Simulator sets it around every
// event it executes, and setup code pins daemons to a node's shard with a
// ShardGuard. The variable lives in util (below sim and obs) so both layers
// can read it without a dependency cycle.

#include <cstdint>

namespace weakset {

namespace shardctx {

/// The shard whose event (or setup scope) this thread is currently executing.
/// 0 outside any sharded simulation.
inline thread_local std::uint32_t current = 0;

}  // namespace shardctx

/// RAII scope that pins shardctx::current, used to give a spawned daemon or a
/// setup-time recording a home shard:
///
///   ShardGuard guard{sim.node_shard(node.raw())};
///   sim.spawn(pull_loop(...));  // coroutine resumes on the node's shard
class ShardGuard {
 public:
  explicit ShardGuard(std::uint32_t shard) noexcept
      : previous_(shardctx::current) {
    shardctx::current = shard;
  }
  ~ShardGuard() { shardctx::current = previous_; }
  ShardGuard(const ShardGuard&) = delete;
  ShardGuard& operator=(const ShardGuard&) = delete;

 private:
  std::uint32_t previous_;
};

}  // namespace weakset
