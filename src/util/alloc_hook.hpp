#pragma once

// Counting allocator hook: process-wide tallies of global operator new /
// operator delete calls. The counts are the ground truth behind the
// zero-allocation claims in bench/micro and tests/alloc_test.cpp — wall-clock
// timings are noisy, allocation counts of a deterministic simulation are not.
//
// The counters are *defined* in alloc_hook.cpp together with replacement
// global operator new/delete, so only binaries that link the
// `weakset_alloc_hook` library get the hook (and can call these functions;
// everywhere else the reference is a link error by design). The hook must be
// linked into the final executable — never into a shared library — so the
// replacements are picked over libstdc++'s.

#include <cstdint>

namespace weakset::alloc_hook {

/// Number of global operator new (all variants) calls so far.
std::uint64_t news() noexcept;

/// Number of global operator delete calls so far that freed a non-null
/// pointer.
std::uint64_t deletes() noexcept;

}  // namespace weakset::alloc_hook
