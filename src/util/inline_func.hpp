#pragma once

// InlineFunc: a move-only std::function<void()> replacement with small-buffer
// optimisation, sized for the simulator's event callbacks (delivery lambdas,
// coroutine resumptions, timer bodies). Successor to the heap-allocating
// MoveFunc: every simulator event used to cost one operator new for its
// callable; with InlineFunc a callable whose captures fit kCapacity bytes is
// stored in place, which makes the steady-state event loop allocation-free
// (bench/micro, tests/alloc_test.cpp).
//
// Callables larger than kCapacity (or not nothrow-movable, or over-aligned)
// transparently fall back to the heap — correctness never depends on fitting.

#include <cstddef>
#include <type_traits>
#include <utility>

namespace weakset {

/// Type-erased move-only nullary callable with inline storage.
class InlineFunc {
 public:
  /// Inline capture budget. The largest hot-path lambda is the RPC reply
  /// delivery (this + two NodeIds + a OneShot + a Result<Payload>, ~96
  /// bytes); 120 leaves headroom without bloating the event slab.
  static constexpr std::size_t kCapacity = 120;

  InlineFunc() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineFunc>>>
  InlineFunc(F&& fn) {  // NOLINT: implicit like std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits<Fn>()) {
      ::new (static_cast<void*>(buffer_)) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buffer_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineFunc(InlineFunc&& other) noexcept { move_from(other); }
  InlineFunc& operator=(InlineFunc&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFunc(const InlineFunc&) = delete;
  InlineFunc& operator=(const InlineFunc&) = delete;
  ~InlineFunc() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->call(buffer_); }

  /// Destroys the stored callable (no-op if empty).
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buffer_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*call)(void*);
    void (*move)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits() {
    return sizeof(Fn) <= kCapacity &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* p) noexcept { delete *static_cast<Fn**>(p); },
  };

  void move_from(InlineFunc& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->move(buffer_, other.buffer_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  alignas(std::max_align_t) unsigned char buffer_[kCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace weakset
