#include "util/failure.hpp"

namespace weakset {

std::string_view to_string(FailureKind kind) {
  switch (kind) {
    case FailureKind::kTimeout:
      return "timeout";
    case FailureKind::kNodeCrashed:
      return "node-crashed";
    case FailureKind::kLinkDown:
      return "link-down";
    case FailureKind::kPartitioned:
      return "partitioned";
    case FailureKind::kUnreachable:
      return "unreachable";
    case FailureKind::kNotFound:
      return "not-found";
    case FailureKind::kCancelled:
      return "cancelled";
    case FailureKind::kExhausted:
      return "exhausted";
    case FailureKind::kWrongEpoch:
      return "wrong-epoch";
    case FailureKind::kOverloaded:
      return "overloaded";
  }
  return "unknown";
}

std::string to_string(const Failure& failure) {
  std::string out{to_string(failure.kind)};
  if (!failure.detail.empty()) {
    out += ": ";
    out += failure.detail;
  }
  return out;
}

}  // namespace weakset
