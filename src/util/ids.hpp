#pragma once

// Strongly-typed integer identifiers. Using a tag-parameterised wrapper keeps
// NodeId / ObjectId / ProcessId etc. mutually unassignable while remaining
// trivially copyable and hashable.

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>

namespace weakset {

/// A strongly typed 64-bit identifier. `Tag` is an empty struct that makes
/// each instantiation a distinct type.
template <typename Tag>
class Id {
 public:
  constexpr Id() = default;
  constexpr explicit Id(std::uint64_t raw) : raw_(raw) {}

  [[nodiscard]] constexpr std::uint64_t raw() const noexcept { return raw_; }

  /// A sentinel id distinct from any id minted by a sequence starting at 0.
  static constexpr Id invalid() { return Id{~std::uint64_t{0}}; }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return raw_ != ~std::uint64_t{0};
  }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  std::uint64_t raw_ = ~std::uint64_t{0};
};

/// Mints ids sequentially from 0. Not thread-safe by design: all minting in
/// this library happens on the single simulation thread.
template <typename Tag>
class IdSequence {
 public:
  Id<Tag> next() { return Id<Tag>{next_++}; }
  [[nodiscard]] std::uint64_t minted() const noexcept { return next_; }

 private:
  std::uint64_t next_ = 0;
};

}  // namespace weakset

template <typename Tag>
struct std::hash<weakset::Id<Tag>> {
  std::size_t operator()(weakset::Id<Tag> id) const noexcept {
    // splitmix64 finaliser: good avalanche for sequential ids.
    std::uint64_t x = id.raw() + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};
