#pragma once

// Result<T>: a minimal expected-like type carrying either a value or a
// weakset::Failure. C++20 predates std::expected, so we provide the subset we
// need, with the same vocabulary (has_value/value/error/value_or).

#include <cassert>
#include <optional>
#include <utility>
#include <variant>

#include "util/failure.hpp"

namespace weakset {

/// Either a `T` or a `Failure`. Used as the return type of every operation
/// that can observe a distributed failure, per the paper's detectable-failure
/// model. Never throws on the failure path.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `return 42;`
  Result(T value) : rep_(std::in_place_index<0>, std::move(value)) {}  // NOLINT
  /// Implicit from a failure: `return Failure{FailureKind::kTimeout};`
  Result(Failure failure)  // NOLINT
      : rep_(std::in_place_index<1>, std::move(failure)) {}

  [[nodiscard]] bool has_value() const noexcept { return rep_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] T& value() & {
    assert(has_value());
    return std::get<0>(rep_);
  }
  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return std::get<0>(rep_);
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::get<0>(std::move(rep_));
  }

  [[nodiscard]] const Failure& error() const& {
    assert(!has_value());
    return std::get<1>(rep_);
  }
  [[nodiscard]] Failure&& error() && {
    assert(!has_value());
    return std::get<1>(std::move(rep_));
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<0>(rep_) : std::move(fallback);
  }

  /// Applies `fn` to the value if present, propagating the failure otherwise.
  template <typename Fn>
  auto map(Fn&& fn) const& -> Result<decltype(fn(std::declval<const T&>()))> {
    if (has_value()) return std::forward<Fn>(fn)(std::get<0>(rep_));
    return std::get<1>(rep_);
  }

  friend bool operator==(const Result& a, const Result& b) {
    return a.rep_ == b.rep_;
  }

 private:
  std::variant<T, Failure> rep_;
};

/// Result specialisation for operations with no payload.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Failure failure) : failure_(std::move(failure)) {}  // NOLINT

  [[nodiscard]] bool has_value() const noexcept {
    return !failure_.has_value();
  }
  explicit operator bool() const noexcept { return has_value(); }

  [[nodiscard]] const Failure& error() const& {
    assert(!has_value());
    return *failure_;
  }

  friend bool operator==(const Result& a, const Result& b) {
    return a.failure_ == b.failure_;
  }

 private:
  std::optional<Failure> failure_;
};

/// Convenience: an ok Result<void>.
inline Result<void> Ok() { return {}; }

}  // namespace weakset
