#pragma once

// Payload: the RPC message box — a move-only, type-erased single value, like
// std::any but (a) move-only, so vectors and strings travel through the
// simulated network without copies, and (b) allocated from BlockPool, so a
// steady-state RPC exchange recycles the same few blocks instead of hitting
// operator new per message. Type identity is checked with a per-type tag
// address (no RTTI string comparisons on the hot path).
//
// Mirrors the std::any vocabulary it replaced:
//   Payload p{msg::FetchRequest{ref}};          // box (implicit, like any)
//   auto* req = payload_cast<msg::FetchRequest>(&p);   // typed peek
//   auto req = payload_cast<msg::FetchRequest>(std::move(p));  // unbox

#include <cassert>
#include <cstddef>
#include <type_traits>
#include <utility>

#include "util/pool.hpp"

namespace weakset {

namespace detail {
/// One byte per type; the ADDRESS is the type's identity.
template <typename T>
inline constexpr char payload_tag = 0;
}  // namespace detail

class Payload {
 public:
  Payload() = default;

  template <typename T,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<T>, Payload>>>
  Payload(T&& value) {  // NOLINT: implicit, mirrors std::any
    using V = std::remove_cvref_t<T>;
    auto* box = static_cast<Box<V>*>(BlockPool::allocate(sizeof(Box<V>)));
    ::new (static_cast<void*>(box)) Box<V>{
        Header{&detail::payload_tag<V>, &destroy_box<V>},
        V(std::forward<T>(value))};
    header_ = &box->header;
  }

  Payload(Payload&& other) noexcept
      : header_(std::exchange(other.header_, nullptr)) {}
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      reset();
      header_ = std::exchange(other.header_, nullptr);
    }
    return *this;
  }
  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;
  ~Payload() { reset(); }

  [[nodiscard]] bool has_value() const noexcept { return header_ != nullptr; }

  void reset() noexcept {
    if (header_ != nullptr) {
      header_->destroy(header_);
      header_ = nullptr;
    }
  }

  /// Pointer to the boxed T, or nullptr if empty or a different type.
  template <typename T>
  [[nodiscard]] T* get() noexcept {
    if (header_ == nullptr || header_->tag != &detail::payload_tag<T>)
      return nullptr;
    return &static_cast<Box<T>*>(static_cast<void*>(header_))->value;
  }
  template <typename T>
  [[nodiscard]] const T* get() const noexcept {
    return const_cast<Payload*>(this)->get<T>();
  }

 private:
  struct Header {
    const char* tag;
    void (*destroy)(Header*) noexcept;
  };

  // Box layout starts with the header, so Header* and Box* interconvert.
  template <typename T>
  struct Box {
    Header header;
    T value;
  };

  template <typename T>
  static void destroy_box(Header* header) noexcept {
    auto* box = static_cast<Box<T>*>(static_cast<void*>(header));
    box->~Box<T>();
    BlockPool::deallocate(box, sizeof(Box<T>));
  }

  Header* header_ = nullptr;
};

/// Typed peek, nullptr on type mismatch (any_cast<T>(any*) analogue).
template <typename T>
[[nodiscard]] T* payload_cast(Payload* payload) noexcept {
  return payload == nullptr ? nullptr : payload->template get<T>();
}

/// Unboxes by move; asserts the type matches (any_cast<T>(std::move(a))
/// analogue — a mismatch here is a programming error, not a modelled fault).
template <typename T>
[[nodiscard]] T payload_cast(Payload&& payload) {
  T* value = payload.get<T>();
  assert(value != nullptr && "payload type mismatch");
  T out = std::move(*value);
  payload.reset();
  return out;
}

}  // namespace weakset
