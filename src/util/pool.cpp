#include "util/pool.hpp"

#include <mutex>

namespace weakset::detail {

void keep_reachable(void* pointer) {
  // Leaked on purpose: the registry exists precisely so the parked pointers
  // (per-thread pool states) stay reachable for the life of the process.
  static std::mutex* mutex = new std::mutex;
  static std::vector<void*>* parked = new std::vector<void*>;
  const std::lock_guard<std::mutex> lock{*mutex};
  parked->push_back(pointer);
}

}  // namespace weakset::detail
