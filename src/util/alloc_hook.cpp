#include "util/alloc_hook.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

// Replacement global allocation functions. Atomics (relaxed) rather than
// plain integers: the simulation is single-threaded, but google-benchmark
// and gtest may allocate from helper threads, and a torn counter would make
// the zero-allocation assertions flaky in exactly the runs that matter.

namespace {

std::atomic<std::uint64_t> g_news{0};
std::atomic<std::uint64_t> g_deletes{0};

void* counted_malloc(std::size_t size) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void* counted_aligned(std::size_t size, std::size_t alignment) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc wants a size that is a multiple of the alignment.
  const std::size_t rounded = (size + alignment - 1) / alignment * alignment;
  return std::aligned_alloc(alignment, rounded != 0 ? rounded : alignment);
}

void counted_free(void* ptr) noexcept {
  if (ptr == nullptr) return;
  g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(ptr);
}

}  // namespace

namespace weakset::alloc_hook {

std::uint64_t news() noexcept {
  return g_news.load(std::memory_order_relaxed);
}

std::uint64_t deletes() noexcept {
  return g_deletes.load(std::memory_order_relaxed);
}

}  // namespace weakset::alloc_hook

void* operator new(std::size_t size) {
  if (void* ptr = counted_malloc(size)) return ptr;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  if (void* ptr = counted_malloc(size)) return ptr;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_malloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  if (void* ptr = counted_aligned(size, static_cast<std::size_t>(alignment)))
    return ptr;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  if (void* ptr = counted_aligned(size, static_cast<std::size_t>(alignment)))
    return ptr;
  throw std::bad_alloc{};
}

void* operator new(std::size_t size, std::align_val_t alignment,
                   const std::nothrow_t&) noexcept {
  return counted_aligned(size, static_cast<std::size_t>(alignment));
}

void* operator new[](std::size_t size, std::align_val_t alignment,
                     const std::nothrow_t&) noexcept {
  return counted_aligned(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* ptr) noexcept { counted_free(ptr); }
void operator delete[](void* ptr) noexcept { counted_free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { counted_free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  counted_free(ptr);
}
void operator delete(void* ptr, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  counted_free(ptr);
}
void operator delete[](void* ptr, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  counted_free(ptr);
}
