#pragma once

// Deterministic random number generation. All randomness in the library flows
// through explicitly seeded Rng instances so that every simulation run is
// reproducible from its seed (DESIGN.md section 3.3).

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "util/time.hpp"

namespace weakset {

/// xoshiro256** seeded via splitmix64. Small, fast, and deterministic across
/// platforms (unlike std::mt19937 + std::uniform_int_distribution, whose
/// distribution outputs are implementation-defined).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform over all 64-bit values.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). Requires bound > 0. Uses rejection sampling to
  /// avoid modulo bias.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform in [0, 1).
  double uniform_double();

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Exponentially distributed duration with the given mean. Used for
  /// inter-arrival times of mutations and failures.
  Duration exponential(Duration mean);

  /// Uniform duration in [lo, hi].
  Duration uniform_duration(Duration lo, Duration hi);

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    assert(!items.empty());
    return items[static_cast<std::size_t>(uniform(items.size()))];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>{items});
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator; used to give each simulated
  /// process its own stream without cross-coupling.
  Rng fork();

 private:
  std::uint64_t state_[4];
};

}  // namespace weakset
