#pragma once

// Simulated-time types. All of the distributed substrate runs under a virtual
// clock (DESIGN.md section 3.3); these types keep simulated durations and
// instants distinct from wall-clock ones.

#include <chrono>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace weakset {

/// A span of simulated time, in nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t nanos) : nanos_(nanos) {}

  static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  static constexpr Duration micros(std::int64_t n) {
    return Duration{n * 1'000};
  }
  static constexpr Duration millis(std::int64_t n) {
    return Duration{n * 1'000'000};
  }
  static constexpr Duration seconds(std::int64_t n) {
    return Duration{n * 1'000'000'000};
  }
  static constexpr Duration zero() { return Duration{0}; }
  static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return nanos_; }
  [[nodiscard]] constexpr double as_millis() const {
    return static_cast<double>(nanos_) / 1e6;
  }
  [[nodiscard]] constexpr double as_seconds() const {
    return static_cast<double>(nanos_) / 1e9;
  }

  friend constexpr auto operator<=>(Duration, Duration) = default;
  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.nanos_ + b.nanos_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.nanos_ - b.nanos_};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration{a.nanos_ * k};
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return Duration{a.nanos_ / k};
  }

 private:
  std::int64_t nanos_ = 0;
};

/// An instant on the simulated clock (nanoseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t nanos) : nanos_(nanos) {}

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return nanos_; }
  [[nodiscard]] constexpr double as_millis() const {
    return static_cast<double>(nanos_) / 1e6;
  }
  [[nodiscard]] constexpr double as_seconds() const {
    return static_cast<double>(nanos_) / 1e9;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;
  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime{t.nanos_ + d.count_nanos()};
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration{a.nanos_ - b.nanos_};
  }

 private:
  std::int64_t nanos_ = 0;
};

/// "1.250ms"-style rendering for logs and bench output.
inline std::string to_string(Duration d) {
  return std::to_string(d.as_millis()) + "ms";
}
inline std::string to_string(SimTime t) {
  return std::to_string(t.as_millis()) + "ms";
}

}  // namespace weakset
