#pragma once

// Arena: a chunked bump allocator. Allocation is a pointer bump into the
// current chunk; a fresh chunk (one operator new) is taken only when the
// current one is exhausted. Individual blocks are never freed back to the
// arena — callers that need recycling layer a free-list on top (see
// util/pool.hpp, which carves all of the hot path's pooled blocks out of a
// process-global arena). reset() rewinds the whole arena at once, reusing
// the chunks already acquired.
//
// Single-threaded by design, like everything under the simulator.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace weakset {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `size` bytes aligned to `align` (a power of two, at most
  /// alignof(std::max_align_t)). Never fails except by bad_alloc.
  void* allocate(std::size_t size, std::size_t align) {
    std::uintptr_t cursor = (cursor_ + (align - 1)) & ~(align - 1);
    if (cursor + size > limit_) {
      new_chunk(size);
      cursor = (cursor_ + (align - 1)) & ~(align - 1);
    }
    cursor_ = cursor + size;
    bytes_allocated_ += size;
    return reinterpret_cast<void*>(cursor);
  }

  /// Rewinds to empty, keeping every chunk for reuse. Anything previously
  /// allocated from this arena is dead after reset().
  void reset() noexcept {
    next_chunk_ = 0;
    bytes_allocated_ = 0;
    if (chunks_.empty()) {
      cursor_ = limit_ = 0;
    } else {
      use_chunk(0);
      next_chunk_ = 1;
    }
  }

  [[nodiscard]] std::size_t bytes_allocated() const noexcept {
    return bytes_allocated_;
  }
  [[nodiscard]] std::size_t chunk_count() const noexcept {
    return chunks_.size();
  }

 private:
  struct Chunk {
    std::unique_ptr<unsigned char[]> data;
    std::size_t size;
  };

  void use_chunk(std::size_t index) noexcept {
    cursor_ = reinterpret_cast<std::uintptr_t>(chunks_[index].data.get());
    limit_ = cursor_ + chunks_[index].size;
  }

  void new_chunk(std::size_t min_size) {
    // Reuse a previously acquired chunk (after reset()) if it is big enough.
    while (next_chunk_ < chunks_.size()) {
      const std::size_t index = next_chunk_++;
      if (chunks_[index].size >= min_size + alignof(std::max_align_t)) {
        use_chunk(index);
        return;
      }
    }
    const std::size_t size =
        min_size + alignof(std::max_align_t) > chunk_bytes_
            ? min_size + alignof(std::max_align_t)
            : chunk_bytes_;
    chunks_.push_back(Chunk{std::make_unique<unsigned char[]>(size), size});
    next_chunk_ = chunks_.size();
    use_chunk(chunks_.size() - 1);
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t next_chunk_ = 0;  // first reusable chunk after the current one
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t bytes_allocated_ = 0;
};

}  // namespace weakset
