#include "util/log.hpp"

#include <cstdio>

namespace weakset {
namespace {
LogLevel g_level = LogLevel::kOff;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kOff:
      break;
  }
  return "?    ";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

namespace detail {
void emit_log(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}
}  // namespace detail

}  // namespace weakset
