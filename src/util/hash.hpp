#pragma once

// Small hashing helpers used for trace digests and container keys.

#include <cstdint>
#include <string_view>

namespace weakset {

/// FNV-1a over bytes; stable across platforms, used for trace hashes in
/// determinism tests.
constexpr std::uint64_t fnv1a(std::string_view bytes,
                              std::uint64_t seed = 0xcbf29ce484222325ULL) {
  std::uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Mixes a 64-bit value into a running hash (boost-style hash_combine with a
/// 64-bit golden-ratio constant).
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

}  // namespace weakset
