#pragma once

// Minimal leveled logger. Off by default so tests and benches stay quiet;
// examples turn it on to narrate simulated runs.

#include <sstream>
#include <string>

namespace weakset {

enum class LogLevel : int { kOff = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

/// Sets the global log threshold. Not thread-safe; call before starting work.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void emit_log(LogLevel level, const std::string& message);
}

/// Logs `expr` (streamed) at `level` if the global threshold allows it.
#define WEAKSET_LOG(level, expr)                                \
  do {                                                          \
    if (static_cast<int>(::weakset::log_level()) >=             \
        static_cast<int>(level)) {                              \
      std::ostringstream weakset_log_os_;                       \
      weakset_log_os_ << expr; /* NOLINT */                     \
      ::weakset::detail::emit_log(level, weakset_log_os_.str());\
    }                                                           \
  } while (false)

#define WEAKSET_INFO(expr) WEAKSET_LOG(::weakset::LogLevel::kInfo, expr)
#define WEAKSET_DEBUG(expr) WEAKSET_LOG(::weakset::LogLevel::kDebug, expr)
#define WEAKSET_TRACE(expr) WEAKSET_LOG(::weakset::LogLevel::kTrace, expr)

}  // namespace weakset
