#pragma once

// Failure values for the weakset library.
//
// The paper ("Specifying Weak Sets", Wing & Steere 1995, section 2.1) assumes a
// distributed system in which "nodes may crash and communication links may
// fail", and in which failures are *detectable*: "We assume we can detect
// failures, e.g., those signaled from the lower network and transport layers".
// The special assertion `fails` denotes termination with a "failure" exception
// "denoting any kind of failure, e.g., a timeout, node crash, or link down".
//
// We model this with a first-class Failure value carried in Result<T>
// (see result.hpp) rather than a C++ exception: failures are an *expected*
// outcome of every remote operation in this domain.

#include <cstdint>
#include <string>

namespace weakset {

/// The kind of detected failure, mirroring the paper's enumeration of
/// "a timeout, node crash, or link down" plus the derived condition of a
/// network partition and the spec-level `fails` outcome of an iterator.
enum class FailureKind : std::uint8_t {
  kTimeout,      ///< An RPC did not complete within its deadline.
  kNodeCrashed,  ///< The target node is known to have crashed.
  kLinkDown,     ///< The link needed to reach the target is down.
  kPartitioned,  ///< Target is in a different partition component.
  kUnreachable,  ///< A known member of a collection cannot be accessed
                 ///< (the iterator-level `fails` of Figures 3-5).
  kNotFound,     ///< Named object does not exist at the responsible node.
  kCancelled,    ///< Operation cancelled by its caller.
  kExhausted,    ///< A bounded retry policy ran out of attempts.
  kWrongEpoch,   ///< The caller's placement directory is stale: the fragment
                 ///< migrated away and the server answers with its current
                 ///< directory epoch (carried in `detail`) so the client can
                 ///< refresh its cache and retry without a coordinator round
                 ///< trip (src/placement).
  kOverloaded,   ///< The server's admission controller shed this request:
                 ///< its service slots are busy and the caller's tenant
                 ///< queue is at capacity (src/store/admission). An explicit
                 ///< back-off signal — the bounded-queue alternative to
                 ///< letting latency collapse under overload.
};

/// A detected failure: the paper's "failure exception" as a value.
struct Failure {
  FailureKind kind = FailureKind::kTimeout;
  /// Optional human-readable context ("fetch obj 17 from node 3 timed out").
  std::string detail;

  friend bool operator==(const Failure& a, const Failure& b) {
    return a.kind == b.kind;  // detail is diagnostic only
  }
};

/// Short stable name for a failure kind ("timeout", "node-crashed", ...).
std::string_view to_string(FailureKind kind);

/// Formats a failure as "kind: detail" (or just "kind" if detail is empty).
std::string to_string(const Failure& failure);

}  // namespace weakset
