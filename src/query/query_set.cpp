#include "query/query_set.hpp"

namespace weakset {

namespace {

using ScanResult = Result<std::vector<ObjectRef>>;

Task<void> scan_into(RpcNetwork& net, NodeId from, NodeId target,
                     PredicateSpec predicate,
                     std::optional<Duration> timeout,
                     OneShot<ScanResult> cell) {
  ScanResult scan = co_await net.call_typed<std::vector<ObjectRef>>(
      from, target, "query.scan", msg::ScanRequest{std::move(predicate)},
      timeout);
  cell.try_set(std::move(scan));
}

}  // namespace

Task<Result<std::vector<ObjectRef>>> QuerySetView::read(QueryMode mode) {
  // Fan the scans out in parallel (a browser opens parallel connections;
  // archives are independent), then gather.
  RpcNetwork& net = client_.repo().net();
  Simulator& sim = net.sim();
  std::vector<OneShot<ScanResult>> cells;
  cells.reserve(targets_.size());
  for (const NodeId target : targets_) {
    cells.emplace_back(sim);
    sim.spawn(scan_into(net, client_.node(), target, predicate_,
                        client_.options().rpc_timeout, cells.back()));
  }

  std::vector<ObjectRef> members;
  std::optional<Failure> first_failure;
  last_skipped_ = 0;
  for (auto& cell : cells) {
    ScanResult scan = co_await cell.wait();
    if (!scan) {
      if (!first_failure) first_failure = std::move(scan).error();
      ++last_skipped_;  // best effort: the reachable part is the membership
      continue;
    }
    const auto& part = scan.value();
    members.insert(members.end(), part.begin(), part.end());
  }
  if (mode == QueryMode::kRequireAll && first_failure) {
    co_return std::move(*first_failure);
  }
  co_return members;
}

Task<Result<std::vector<ObjectRef>>> QuerySetView::read_members() {
  return read(mode_);
}

Task<Result<std::vector<ObjectRef>>> QuerySetView::snapshot_atomic(
    std::function<void()> on_cut) {
  Result<std::vector<ObjectRef>> members =
      co_await read(QueryMode::kRequireAll);
  if (members && on_cut) on_cut();
  co_return members;
}

}  // namespace weakset
