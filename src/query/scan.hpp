#pragma once

// QueryService: the server-side scan endpoint ("query.scan").
//
// Each installed node scans its local object store against a shipped
// PredicateSpec and returns the matching refs. Scan cost is modelled as a
// base latency plus a per-object charge (index-free sweep, like grepping a
// WAIS archive).

#include <memory>
#include <unordered_map>
#include <vector>

#include "query/index.hpp"
#include "query/predicate.hpp"
#include "store/repository.hpp"

namespace weakset {
namespace msg {

/// query.scan request. Reply: std::vector<ObjectRef>.
class ScanRequest {
 public:
  explicit ScanRequest(PredicateSpec predicate)
      : predicate_(std::move(predicate)) {}
  [[nodiscard]] const PredicateSpec& predicate() const noexcept {
    return predicate_;
  }

 private:
  PredicateSpec predicate_;
};

}  // namespace msg

struct ScanOptions {
  Duration base_latency = Duration::millis(1);
  Duration per_object = Duration::micros(20);
};

class QueryService {
 public:
  explicit QueryService(Repository& repo, ScanOptions options = {})
      : repo_(repo), options_(options) {}
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers the scan endpoint on `node` (which must run a store server).
  void install(NodeId node);

  /// Registers the scan endpoint on every store server.
  void install_all() {
    for (const NodeId node : repo_.server_nodes()) install(node);
  }

 private:
  Repository& repo_;
  ScanOptions options_;
};

/// Cost model for the indexed scan endpoint.
struct IndexedScanOptions {
  Duration base_latency = Duration::millis(1);
  /// Cost per object when the index must be (re)built or when the predicate
  /// forces a full sweep.
  Duration per_object_sweep = Duration::micros(20);
  /// Cost per index candidate (posting fetch + predicate verification).
  Duration per_candidate = Duration::micros(5);
};

/// The indexed variant of the scan endpoint: maintains a per-node inverted
/// index (rebuilt lazily when the store changed) and answers single-token
/// CONTAINS predicates from it — candidates are verified against the full
/// predicate, so results stay exact. Other predicates fall back to the
/// sweep. The WAIS-style archive substrate.
class IndexedQueryService {
 public:
  explicit IndexedQueryService(Repository& repo,
                               IndexedScanOptions options = {})
      : repo_(repo), options_(options) {}
  IndexedQueryService(const IndexedQueryService&) = delete;
  IndexedQueryService& operator=(const IndexedQueryService&) = delete;

  void install(NodeId node);
  void install_all() {
    for (const NodeId node : repo_.server_nodes()) install(node);
  }

  /// How often scans were answered from the index vs by sweeping.
  [[nodiscard]] std::uint64_t index_hits() const noexcept {
    return index_hits_;
  }
  [[nodiscard]] std::uint64_t sweeps() const noexcept { return sweeps_; }
  [[nodiscard]] std::uint64_t rebuilds() const noexcept { return rebuilds_; }

 private:
  struct NodeIndex {
    InvertedIndex index;
    std::uint64_t built_at_version = 0;
    bool built = false;
  };

  Repository& repo_;
  IndexedScanOptions options_;
  std::unordered_map<NodeId, std::unique_ptr<NodeIndex>> indexes_;
  std::uint64_t index_hits_ = 0;
  std::uint64_t sweeps_ = 0;
  std::uint64_t rebuilds_ = 0;
};

}  // namespace weakset
