#include "query/index.hpp"

#include <algorithm>

namespace weakset {

std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

void InvertedIndex::index_object(ObjectId id, const FileInfo& file) {
  remove_object(id);  // re-index: drop old postings first
  std::vector<std::string> terms = tokenize(file.name());
  const std::vector<std::string> body = tokenize(file.contents());
  terms.insert(terms.end(), body.begin(), body.end());
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  for (const std::string& term : terms) postings_[term].insert(id);
  terms_of_[id] = std::move(terms);
}

void InvertedIndex::remove_object(ObjectId id) {
  const auto it = terms_of_.find(id);
  if (it == terms_of_.end()) return;
  for (const std::string& term : it->second) {
    const auto posting = postings_.find(term);
    if (posting == postings_.end()) continue;
    posting->second.erase(id);
    if (posting->second.empty()) postings_.erase(posting);
  }
  terms_of_.erase(it);
}

std::vector<ObjectId> InvertedIndex::lookup(std::string_view term) const {
  const auto tokens = tokenize(term);
  if (tokens.size() != 1) return {};
  const auto it = postings_.find(tokens.front());
  if (it == postings_.end()) return {};
  std::vector<ObjectId> out{it->second.begin(), it->second.end()};
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace weakset
