#include "query/predicate.hpp"

#include <algorithm>

namespace weakset {

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer glob with backtracking over the last '*'.
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string_view::npos;
  std::size_t star_text = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_text = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_text;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool PredicateSpec::matches(const FileInfo& file) const {
  switch (kind_) {
    case Kind::kAll:
      return true;
    case Kind::kNameGlob:
      return glob_match(argument_, file.name());
    case Kind::kNamePrefix:
      return file.name().starts_with(argument_);
    case Kind::kContains:
      return file.contents().find(argument_) != std::string::npos;
    case Kind::kAnd:
      return std::all_of(children_.begin(), children_.end(),
                         [&](const PredicateSpec& child) {
                           return child.matches(file);
                         });
    case Kind::kOr:
      return std::any_of(children_.begin(), children_.end(),
                         [&](const PredicateSpec& child) {
                           return child.matches(file);
                         });
    case Kind::kNot:
      return !children_.front().matches(file);
  }
  return false;
}

}  // namespace weakset
