#pragma once

// InvertedIndex: a per-node term index over file names and contents — the
// WAIS-archive substrate ("An information system for corporate users: Wide
// Area Information Servers" is one of the paper's motivating systems).
//
// Tokenisation: maximal runs of [A-Za-z0-9], lowercased. A posting maps a
// term to the objects whose name or contents contain it as a whole token.
// The index answers single-term CONTAINS queries directly; the scan service
// verifies index candidates against the full predicate (the index may
// over-approximate for non-token substrings, never under-approximate for
// whole tokens — so verification keeps results exact while the index prunes
// the sweep).

#include <cctype>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fs/file.hpp"
#include "store/object.hpp"

namespace weakset {

/// Lowercased whole tokens of `text`.
std::vector<std::string> tokenize(std::string_view text);

class InvertedIndex {
 public:
  /// (Re)indexes one object.
  void index_object(ObjectId id, const FileInfo& file);

  /// Drops one object's postings.
  void remove_object(ObjectId id);

  /// Objects whose name or contents contain `term` as a whole token.
  [[nodiscard]] std::vector<ObjectId> lookup(std::string_view term) const;

  /// True iff `query` is answerable by a term lookup: a single whole token.
  [[nodiscard]] static bool is_indexable(std::string_view query) {
    const auto tokens = tokenize(query);
    return tokens.size() == 1 && tokens.front().size() == query.size();
  }

  [[nodiscard]] std::size_t term_count() const noexcept {
    return postings_.size();
  }
  [[nodiscard]] std::size_t indexed_objects() const noexcept {
    return terms_of_.size();
  }

  void clear() {
    postings_.clear();
    terms_of_.clear();
  }

 private:
  // term -> posting set; object -> its terms (for removal).
  std::unordered_map<std::string, std::unordered_set<ObjectId>> postings_;
  std::unordered_map<ObjectId, std::vector<std::string>> terms_of_;
};

}  // namespace weakset
