#pragma once

// QuerySetView: a weak set defined *by a query* — membership is whatever the
// scan service returns right now from the target nodes.
//
// This realises the paper's core examples: "display the .face files of all
// people listed on Carnegie Mellon's home page", "a list of papers by a
// particular author", "the on-line menus of all Chinese restaurants". The
// non-serializable effects the paper predicts fall out directly:
//   - "Two people running the same query at the same time may obtain
//      different sets of elements."
//   - "Running the same query twice in a row may return different sets."
//
// Two read modes:
//   kRequireAll   every target node must answer (pessimistic reads; a
//                 partitioned archive fails the query)
//   kBestEffort   unreachable nodes are skipped; membership is what the
//                 reachable part of the federation can see right now

#include <vector>

#include "core/set_view.hpp"
#include "query/scan.hpp"
#include "store/client.hpp"
#include "store/reachable.hpp"

namespace weakset {

enum class QueryMode { kRequireAll, kBestEffort };

class QuerySetView final : public SetView {
 public:
  QuerySetView(RepositoryClient& client, PredicateSpec predicate,
               std::vector<NodeId> targets,
               QueryMode mode = QueryMode::kBestEffort)
      : client_(client),
        predicate_(std::move(predicate)),
        targets_(std::move(targets)),
        mode_(mode) {}

  Task<Result<std::vector<ObjectRef>>> read_members() override;

  /// Queries have no freeze substrate, so the "snapshot" is a require-all
  /// read: consistent only in the absence of concurrent mutation. Documented
  /// approximation (a real system would need repository-wide locks — the
  /// very cost the paper argues against).
  Task<Result<std::vector<ObjectRef>>> snapshot_atomic(
      std::function<void()> on_cut) override;

  Task<Result<void>> freeze() override {
    co_return Failure{FailureKind::kNotFound,
                      "query sets cannot freeze the repository"};
  }
  Task<void> unfreeze() override { co_return; }

  Task<Result<void>> pin_grow_only() override {
    co_return Failure{FailureKind::kNotFound,
                      "query sets cannot pin the repository"};
  }
  Task<void> unpin_grow_only() override { co_return; }

  [[nodiscard]] bool is_reachable(ObjectRef ref) const override {
    return weakset::is_reachable(client_.repo().topology(), client_.node(),
                                 ref);
  }
  [[nodiscard]] std::optional<Duration> distance(
      ObjectRef ref) const override {
    return client_.repo().topology().path_latency(client_.node(), ref.home());
  }
  Task<Result<VersionedValue>> fetch(ObjectRef ref) override {
    return client_.fetch(ref);
  }
  [[nodiscard]] Simulator& sim() override { return client_.repo().sim(); }

  /// Nodes skipped (unreachable / failed) during the last best-effort read.
  [[nodiscard]] std::size_t last_skipped() const noexcept {
    return last_skipped_;
  }

 private:
  Task<Result<std::vector<ObjectRef>>> read(QueryMode mode);

  RepositoryClient& client_;
  PredicateSpec predicate_;
  std::vector<NodeId> targets_;
  QueryMode mode_;
  std::size_t last_skipped_ = 0;
};

}  // namespace weakset
