#pragma once

// PredicateSpec: a small, value-serialisable predicate language over
// FileInfo, evaluated server-side by the scan service.
//
// The paper motivates "database-like queries, e.g., finding all files that
// satisfy a given predicate" (section 1.1) — list papers by an author,
// menus of Chinese restaurants, .face files of people on a home page. A
// predicate is shipped in the scan RPC, so it must be a value, not code:
// this spec covers globs, substring search, prefixes, and boolean
// combinations, which is enough for all of the paper's examples.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "fs/file.hpp"

namespace weakset {

class PredicateSpec {
 public:
  enum class Kind : std::uint8_t {
    kAll,           ///< matches everything
    kNameGlob,      ///< file name matches a * / ? glob
    kNamePrefix,    ///< file name starts with the argument
    kContains,      ///< file contents contain the argument
    kAnd,           ///< all children match
    kOr,            ///< any child matches
    kNot,           ///< the single child does not match
  };

  /// Matches every file.
  static PredicateSpec all() { return PredicateSpec{Kind::kAll, ""}; }
  /// File name matches `pattern` ('*' any run, '?' any one char).
  static PredicateSpec name_glob(std::string pattern) {
    return PredicateSpec{Kind::kNameGlob, std::move(pattern)};
  }
  /// File name starts with `prefix`.
  static PredicateSpec name_prefix(std::string prefix) {
    return PredicateSpec{Kind::kNamePrefix, std::move(prefix)};
  }
  /// File contents contain `needle`.
  static PredicateSpec contains(std::string needle) {
    return PredicateSpec{Kind::kContains, std::move(needle)};
  }
  static PredicateSpec all_of(std::vector<PredicateSpec> children) {
    return PredicateSpec{Kind::kAnd, "", std::move(children)};
  }
  static PredicateSpec any_of(std::vector<PredicateSpec> children) {
    return PredicateSpec{Kind::kOr, "", std::move(children)};
  }
  static PredicateSpec negate(PredicateSpec child) {
    std::vector<PredicateSpec> children;
    children.push_back(std::move(child));
    return PredicateSpec{Kind::kNot, "", std::move(children)};
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& argument() const noexcept {
    return argument_;
  }
  [[nodiscard]] const std::vector<PredicateSpec>& children() const noexcept {
    return children_;
  }

  /// Evaluates the predicate against a file.
  [[nodiscard]] bool matches(const FileInfo& file) const;

 private:
  PredicateSpec(Kind kind, std::string argument,
                std::vector<PredicateSpec> children = {})
      : kind_(kind),
        argument_(std::move(argument)),
        children_(std::move(children)) {}

  Kind kind_;
  std::string argument_;
  std::vector<PredicateSpec> children_;
};

/// Glob match with '*' (any run, including empty) and '?' (any one char).
[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view text);

}  // namespace weakset
