#include "query/scan.hpp"

#include "fs/file.hpp"

namespace weakset {

void QueryService::install(NodeId node) {
  StoreServer* server = repo_.server_at(node);
  assert(server != nullptr && "no store server on that node");
  RpcNetwork& net = repo_.net();
  const ScanOptions options = options_;
  net.register_handler(
      node, "query.scan",
      [server, node, options, &net](NodeId,
                                    Payload request) -> Task<Result<Payload>> {
        const auto req = payload_cast<msg::ScanRequest>(std::move(request));
        const ObjectStore& store = server->objects();
        co_await net.sim().delay(
            options.base_latency +
            options.per_object * static_cast<std::int64_t>(store.size()));
        std::vector<ObjectRef> matches;
        store.for_each([&](ObjectId id, const VersionedValue& value) {
          if (req.predicate().matches(FileInfo::decode(value.data()))) {
            matches.emplace_back(id, node);
          }
        });
        // Unordered-map iteration order is nondeterministic across libc++/
        // libstdc++; sort for reproducible traces.
        std::sort(matches.begin(), matches.end());
        co_return Payload{std::move(matches)};
      });
}

void IndexedQueryService::install(NodeId node) {
  StoreServer* server = repo_.server_at(node);
  assert(server != nullptr && "no store server on that node");
  auto [it, inserted] = indexes_.emplace(node, std::make_unique<NodeIndex>());
  assert(inserted && "indexed scan already installed on that node");
  NodeIndex* node_index = it->second.get();
  RpcNetwork& net = repo_.net();
  const IndexedScanOptions options = options_;
  net.register_handler(
      node, "query.scan",
      [this, server, node, node_index, options,
       &net](NodeId, Payload request) -> Task<Result<Payload>> {
        const auto req = payload_cast<msg::ScanRequest>(std::move(request));
        const ObjectStore& store = server->objects();
        co_await net.sim().delay(options.base_latency);

        // Lazy (re)build when the store changed since the last build.
        if (!node_index->built ||
            node_index->built_at_version != store.store_version()) {
          co_await net.sim().delay(
              options.per_object_sweep *
              static_cast<std::int64_t>(store.size()));
          node_index->index.clear();
          store.for_each([&](ObjectId id, const VersionedValue& value) {
            node_index->index.index_object(id,
                                           FileInfo::decode(value.data()));
          });
          node_index->built = true;
          node_index->built_at_version = store.store_version();
          ++rebuilds_;
        }

        const PredicateSpec& predicate = req.predicate();
        std::vector<ObjectRef> matches;
        if (predicate.kind() == PredicateSpec::Kind::kContains &&
            InvertedIndex::is_indexable(predicate.argument())) {
          ++index_hits_;
          const std::vector<ObjectId> candidates =
              node_index->index.lookup(predicate.argument());
          co_await net.sim().delay(
              options.per_candidate *
              static_cast<std::int64_t>(candidates.size()));
          for (const ObjectId id : candidates) {
            const auto value = store.get(id);
            if (value &&
                predicate.matches(FileInfo::decode(value->data()))) {
              matches.emplace_back(id, node);
            }
          }
        } else {
          ++sweeps_;
          co_await net.sim().delay(
              options.per_object_sweep *
              static_cast<std::int64_t>(store.size()));
          store.for_each([&](ObjectId id, const VersionedValue& value) {
            if (predicate.matches(FileInfo::decode(value.data()))) {
              matches.emplace_back(id, node);
            }
          });
        }
        std::sort(matches.begin(), matches.end());
        co_return Payload{std::move(matches)};
      });
}

}  // namespace weakset
