#pragma once

// Umbrella header for the weakset library.
//
// Pulls in the public API of every module: the simulated substrate
// (simulator, topology, RPC, repository), the weak-set core (SetView,
// iterators, WeakSet), dynamic sets, the distributed file system, the query
// engine, and the executable-specification layer. Include this for
// applications; library code includes the specific headers it needs.

// Substrate
#include "net/chaos.hpp"        // IWYU pragma: export
#include "net/rpc.hpp"          // IWYU pragma: export
#include "net/topology.hpp"     // IWYU pragma: export
#include "sim/channel.hpp"      // IWYU pragma: export
#include "sim/simulator.hpp"    // IWYU pragma: export
#include "sim/task.hpp"         // IWYU pragma: export
#include "store/admission.hpp"  // IWYU pragma: export
#include "store/cache.hpp"      // IWYU pragma: export
#include "store/client.hpp"     // IWYU pragma: export
#include "store/reachable.hpp"  // IWYU pragma: export
#include "store/repository.hpp" // IWYU pragma: export

// Load generation (population-scale workloads)
#include "load/workload.hpp"  // IWYU pragma: export
#include "load/zipf.hpp"      // IWYU pragma: export

// Placement: versioned directory, live migration, rebalancing
#include "placement/directory.hpp"   // IWYU pragma: export
#include "placement/migration.hpp"   // IWYU pragma: export
#include "placement/rebalancer.hpp"  // IWYU pragma: export

// Core: weak sets
#include "core/caching_view.hpp"  // IWYU pragma: export
#include "core/hoard_view.hpp"    // IWYU pragma: export
#include "core/iterator.hpp"      // IWYU pragma: export
#include "core/local_view.hpp"    // IWYU pragma: export
#include "core/repo_view.hpp"     // IWYU pragma: export
#include "core/set_view.hpp"      // IWYU pragma: export
#include "core/value_set.hpp"     // IWYU pragma: export
#include "core/weak_set.hpp"      // IWYU pragma: export

// Dynamic sets, file system, queries
#include "dynset/dynamic_set.hpp"  // IWYU pragma: export
#include "fs/dist_fs.hpp"          // IWYU pragma: export
#include "fs/ls.hpp"               // IWYU pragma: export
#include "fs/walk.hpp"             // IWYU pragma: export
#include "query/query_set.hpp"     // IWYU pragma: export
#include "query/scan.hpp"          // IWYU pragma: export

// Executable specifications
#include "spec/render.hpp"      // IWYU pragma: export
#include "spec/repo_truth.hpp"  // IWYU pragma: export
#include "spec/specs.hpp"       // IWYU pragma: export
#include "spec/taxonomy.hpp"    // IWYU pragma: export
