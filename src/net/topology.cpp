#include "net/topology.hpp"

#include <cassert>
#include <limits>
#include <queue>
#include <unordered_set>

namespace weakset {

NodeId Topology::add_node(std::string name) {
  const NodeId id{nodes_.size()};
  nodes_.push_back(Node{std::move(name), /*up=*/true,
                        CrashKind::kTransient, {}});
  node_ids_.push_back(id);
  bump();
  return id;
}

std::size_t Topology::index(NodeId node) const {
  assert(node.valid() && node.raw() < nodes_.size());
  return static_cast<std::size_t>(node.raw());
}

Topology::Link* Topology::find_link(std::size_t from, std::size_t to) {
  for (Link& link : nodes_[from].links) {
    if (link.peer == to) return &link;
  }
  return nullptr;
}

void Topology::connect(NodeId a, NodeId b, Duration latency) {
  const std::size_t ia = index(a);
  const std::size_t ib = index(b);
  assert(ia != ib && "no self-links");
  if (Link* existing = find_link(ia, ib)) {
    existing->latency = latency;
    existing->up = true;
    find_link(ib, ia)->latency = latency;
    find_link(ib, ia)->up = true;
  } else {
    nodes_[ia].links.push_back(Link{ib, latency, true});
    nodes_[ib].links.push_back(Link{ia, latency, true});
  }
  bump();
}

void Topology::connect_full_mesh(Duration latency) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes_.size(); ++j) {
      connect(node_ids_[i], node_ids_[j], latency);
    }
  }
}

void Topology::crash(NodeId node, CrashKind kind) {
  Node& n = nodes_[index(node)];
  if (!n.up) return;  // already down: the outage keeps its original kind
  n.up = false;
  n.last_crash = kind;
  bump();
  for (auto& listener : listeners_) {
    if (listener && listener->on_crash) listener->on_crash(node, kind);
  }
}

void Topology::restart(NodeId node) {
  Node& n = nodes_[index(node)];
  if (n.up) return;
  n.up = true;
  bump();
  for (auto& listener : listeners_) {
    if (listener && listener->on_restart) {
      listener->on_restart(node, n.last_crash);
    }
  }
}

bool Topology::is_up(NodeId node) const { return nodes_[index(node)].up; }

Topology::CrashKind Topology::last_crash_kind(NodeId node) const {
  return nodes_[index(node)].last_crash;
}

std::size_t Topology::add_liveness_listener(LivenessListener listener) {
  listeners_.push_back(std::move(listener));
  return listeners_.size() - 1;
}

void Topology::remove_liveness_listener(std::size_t token) {
  assert(token < listeners_.size());
  listeners_[token].reset();
}

void Topology::set_link_up(NodeId a, NodeId b, bool up) {
  const std::size_t ia = index(a);
  const std::size_t ib = index(b);
  Link* ab = find_link(ia, ib);
  assert(ab != nullptr && "link does not exist");
  ab->up = up;
  find_link(ib, ia)->up = up;
  bump();
}

bool Topology::link_up(NodeId a, NodeId b) const {
  for (const Link& link : nodes_[index(a)].links) {
    if (link.peer == index(b)) return link.up;
  }
  return false;
}

void Topology::partition(const std::vector<std::vector<NodeId>>& groups) {
  // Map each listed node to its group.
  std::unordered_map<std::size_t, std::size_t> group_of;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const NodeId node : groups[g]) group_of[index(node)] = g;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto gi = group_of.find(i);
    if (gi == group_of.end()) continue;
    for (Link& link : nodes_[i].links) {
      const auto gj = group_of.find(link.peer);
      if (gj == group_of.end()) continue;
      link.up = (gi->second == gj->second);
    }
  }
  bump();
}

void Topology::heal() {
  for (Node& node : nodes_) {
    for (Link& link : node.links) link.up = true;
  }
  bump();
}

bool Topology::can_communicate(NodeId from, NodeId to) const {
  return path_latency(from, to).has_value();
}

std::optional<Duration> Topology::path_latency(NodeId from, NodeId to) const {
  const std::size_t src = index(from);
  const std::size_t dst = index(to);
  if (!nodes_[src].up || !nodes_[dst].up) return std::nullopt;
  if (src == dst) return Duration::zero();

  if (routing_ == Routing::kDirectOnly) {
    for (const Link& link : nodes_[src].links) {
      if (link.peer == dst && link.up) return link.latency;
    }
    return std::nullopt;
  }

  // Dijkstra over live links through live nodes. Topologies here are small
  // (tens to hundreds of nodes), so no route cache is needed.
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> dist(nodes_.size(), kInf);
  using Entry = std::pair<std::int64_t, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  dist[src] = 0;
  frontier.emplace(0, src);
  while (!frontier.empty()) {
    const auto [d, u] = frontier.top();
    frontier.pop();
    if (d > dist[u]) continue;
    if (u == dst) return Duration::nanos(d);
    for (const Link& link : nodes_[u].links) {
      if (!link.up || !nodes_[link.peer].up) continue;
      const std::int64_t nd = d + link.latency.count_nanos();
      if (nd < dist[link.peer]) {
        dist[link.peer] = nd;
        frontier.emplace(nd, link.peer);
      }
    }
  }
  return std::nullopt;
}

const std::string& Topology::name(NodeId node) const {
  return nodes_[index(node)].name;
}

}  // namespace weakset
