#pragma once

// ChaosInjector: a seeded failure-injection process over a topology.
//
// Drives the failure model of section 2.1 — "Nodes may crash and
// communication links may fail. These failures may lead to network
// partitions" — as a background workload: nodes crash and restart, links
// flap, with exponentially distributed uptimes and configurable outage
// durations. Deterministic from its seed, bounded by a deadline, and
// guaranteed to leave everything healed at the end (so optimistic runs can
// complete).

#include <vector>

#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "util/rng.hpp"

namespace weakset {

struct ChaosOptions {
  /// Mean time between failures, per victim node.
  Duration mean_uptime = Duration::seconds(3);
  /// How long a crash or link cut lasts.
  Duration outage = Duration::millis(400);
  /// Probability that an injected failure is a node crash (else: one of the
  /// victim's links is cut).
  double crash_bias = 0.5;
  /// Probability that an injected crash is an amnesia crash (volatile state
  /// lost, durable recovery on restart) rather than a transient one. The
  /// draw is skipped entirely at 0.0 so pre-existing seeds keep their exact
  /// RNG streams.
  double amnesia_bias = 0.0;
  /// No injections after this instant; everything is healed by
  /// deadline + outage.
  SimTime deadline = SimTime::max();
};

class ChaosInjector {
 public:
  /// Starts injecting failures into `victims`. The injector object must
  /// outlive the simulation run.
  ChaosInjector(Simulator& sim, Topology& topology,
                std::vector<NodeId> victims, std::uint64_t seed,
                ChaosOptions options = {})
      : sim_(sim),
        topology_(topology),
        victims_(std::move(victims)),
        rng_(seed),
        options_(options) {
    for (const NodeId victim : victims_) {
      sim_.spawn(torment(victim, rng_.fork()));
    }
  }
  ChaosInjector(const ChaosInjector&) = delete;
  ChaosInjector& operator=(const ChaosInjector&) = delete;

  /// Stops future injections (outages already in progress still heal).
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }
  [[nodiscard]] std::uint64_t amnesia_crashes() const noexcept {
    return amnesia_crashes_;
  }
  [[nodiscard]] std::uint64_t link_cuts() const noexcept {
    return link_cuts_;
  }

 private:
  Task<void> torment(NodeId victim, Rng rng) {
    for (;;) {
      co_await sim_.delay(rng.exponential(options_.mean_uptime));
      if (stopped_ || sim_.now() >= options_.deadline) co_return;
      if (rng.bernoulli(options_.crash_bias)) {
        // Short-circuit: no amnesia draw at bias 0, so pre-amnesia seeds
        // observe byte-identical RNG streams.
        const Topology::CrashKind kind =
            options_.amnesia_bias > 0.0 && rng.bernoulli(options_.amnesia_bias)
                ? Topology::CrashKind::kAmnesia
                : Topology::CrashKind::kTransient;
        ++crashes_;
        if (kind == Topology::CrashKind::kAmnesia) ++amnesia_crashes_;
        topology_.crash(victim, kind);
        co_await sim_.delay(options_.outage);
        topology_.restart(victim);
      } else {
        // Cut one random other node's link direction pair, if connected.
        const NodeId peer = rng.pick(victims_);
        if (peer == victim || !topology_.link_up(victim, peer)) continue;
        ++link_cuts_;
        topology_.set_link_up(victim, peer, false);
        co_await sim_.delay(options_.outage);
        // The victim (or peer) may have crashed meanwhile; restoring the
        // link is still safe.
        topology_.set_link_up(victim, peer, true);
      }
    }
  }

  Simulator& sim_;
  Topology& topology_;
  std::vector<NodeId> victims_;
  Rng rng_;
  ChaosOptions options_;
  bool stopped_ = false;
  std::uint64_t crashes_ = 0;
  std::uint64_t amnesia_crashes_ = 0;
  std::uint64_t link_cuts_ = 0;
};

}  // namespace weakset
