#include "net/rpc.hpp"

#include <utility>

namespace weakset {

MethodId RpcNetwork::intern(std::string_view method) {
  if (const auto it = method_index_.find(method); it != method_index_.end()) {
    return MethodId{it->second};
  }
  // The lookup above is safe from any shard; inserting is not. Every method
  // with a registered handler is interned at registration time (before the
  // run), so hitting this path mid-window means calling a method nobody
  // serves — made loud here instead of racing on the intern table.
  assert(!sim_.in_parallel_window() &&
         "new RPC method names must be interned before parallel execution");
  const auto index = static_cast<std::uint32_t>(methods_.size());
  MethodInfo info;
  info.name = std::string{method};
  info.latency_name = "rpc." + info.name + ".latency_ns";
  info.ok_name = "rpc." + info.name + ".ok";
  info.failed_name = "rpc." + info.name + ".failed";
  info.timeouts_name = "rpc." + info.name + ".timeouts";
  info.serve_name = info.name + "#serve";
  info.not_found_detail = "no handler for " + info.name;
  methods_.push_back(std::move(info));
  method_index_.emplace(methods_.back().name, index);
  return MethodId{index};
}

void RpcNetwork::register_handler(NodeId node, MethodId method,
                                  Handler handler) {
  assert(method.valid());
  const auto n = static_cast<std::size_t>(node.raw());
  if (handlers_.size() <= n) handlers_.resize(n + 1);
  auto& table = handlers_[n];
  if (table.size() <= method.index()) table.resize(method.index() + 1);
  table[method.index()] = std::move(handler);
}

const RpcNetwork::Handler* RpcNetwork::find_handler(NodeId node,
                                                    MethodId method) const {
  const auto n = static_cast<std::size_t>(node.raw());
  if (!method.valid() || n >= handlers_.size() ||
      method.index() >= handlers_[n].size()) {
    return nullptr;
  }
  const Handler& handler = handlers_[n][method.index()];
  return handler ? &handler : nullptr;
}

std::optional<Duration> RpcNetwork::base_latency(NodeId from, NodeId to) {
  RouteCache& cache = route_caches_[lane()];
  if (cache.version != topology_.version()) {
    cache.version = topology_.version();
    cache.nodes = topology_.node_count();
    // assign() reuses the vector's capacity once the node count stabilises.
    cache.latency.assign(cache.nodes * cache.nodes, kRouteUnknown);
  }
  const auto src = static_cast<std::size_t>(from.raw());
  const auto dst = static_cast<std::size_t>(to.raw());
  assert(src < cache.nodes && dst < cache.nodes);
  std::int64_t& slot = cache.latency[src * cache.nodes + dst];
  if (slot == kRouteUnknown) {
    const auto base = topology_.path_latency(from, to);
    slot = base ? base->count_nanos() : kRouteNoPath;
  }
  if (slot == kRouteNoPath) return std::nullopt;
  return Duration::nanos(slot);
}

std::optional<Duration> RpcNetwork::delivery_latency(NodeId from, NodeId to) {
  if (from == to) {
    return options_.local_latency;
  }
  const auto base = base_latency(from, to);
  if (!base) return std::nullopt;
  Rng& rng = sharded_ ? shard_rngs_[lane()] : rng_;
  const double factor = 1.0 + options_.jitter * rng.uniform_double();
  return Duration::nanos(static_cast<std::int64_t>(
      static_cast<double>(base->count_nanos()) * factor));
}

RpcStats RpcNetwork::stats() const noexcept {
  RpcStats total;
  for (const RpcStats& lane_stats : shard_stats_) {
    total.calls += lane_stats.calls;
    total.completed += lane_stats.completed;
    total.failed += lane_stats.failed;
    total.timeouts += lane_stats.timeouts;
    total.messages_delivered += lane_stats.messages_delivered;
    total.messages_dropped += lane_stats.messages_dropped;
  }
  return total;
}

Task<Result<Payload>> RpcNetwork::call(NodeId from, NodeId to, MethodId method,
                                       Payload request, Duration timeout) {
  // The caller's home shard: the timeout timer, the failure-detection signal,
  // and the reply all complete the OneShot here, so the cell is only ever
  // touched — and the timer only ever cancelled — from this one shard.
  const std::uint32_t home = sharded_ ? shardctx::current : 0;
  ++shard_stats_[home].calls;
  metrics_.add("rpc.calls");
  const MethodInfo& info = this->info(method);  // deque: stable across awaits
  const SimTime call_started = sim_.now();
  const std::uint64_t call_span =
      metrics_.begin_span(info.name, topology_.name(to), call_started);
  OneShot<Result<Payload>> reply{sim_};

  // Arm the timeout first: it must fire even if everything else is dropped.
  const auto timeout_timer =
      sim_.schedule_cancellable(timeout, [reply]() mutable {
        reply.try_set(Failure{FailureKind::kTimeout, "rpc deadline exceeded"});
      });

  const auto request_latency = delivery_latency(from, to);
  if (!request_latency) {
    // No live path. With detectable failures (the paper's assumption) the
    // transport signals this quickly; otherwise the timeout stands alone.
    if (options_.fast_fail_unreachable) {
      sim_.schedule(options_.detection_delay, [this, to, reply]() mutable {
        const auto kind = topology_.is_up(to) ? FailureKind::kPartitioned
                                              : FailureKind::kNodeCrashed;
        reply.try_set(Failure{kind, "destination unreachable"});
      });
    }
  } else {
    // Deliver the request after the path latency, onto the *destination's*
    // shard — the handler runs where the server node lives. Reachability is
    // re-checked at delivery time: a partition or crash occurring while the
    // message is in flight loses the message.
    sim_.schedule_on(
        sim_.node_shard(to.raw()), *request_latency,
        [this, from, to, method, reply, call_span, home,
         req = std::move(request)]() mutable {
          if (!topology_.is_up(to) || !route_alive(from, to)) {
            ++shard_stats_[lane()].messages_dropped;
            metrics_.add("rpc.messages_dropped");
            return;  // lost; the caller's timeout will fire
          }
          ++shard_stats_[lane()].messages_delivered;
          metrics_.add("rpc.messages_delivered");
          sim_.spawn(
              serve(from, to, method, std::move(req), reply, call_span, home));
        });
  }

  Result<Payload> outcome = co_await reply.wait();
  timeout_timer.cancel();
  metrics_.record(info.latency_name, sim_.now() - call_started);
  if (outcome) {
    ++shard_stats_[home].completed;
    metrics_.add("rpc.completed");
    metrics_.add(info.ok_name);
    metrics_.end_span(call_span, sim_.now(), "ok");
  } else {
    ++shard_stats_[home].failed;
    metrics_.add("rpc.failed");
    metrics_.add(info.failed_name);
    if (outcome.error().kind == FailureKind::kTimeout) {
      ++shard_stats_[home].timeouts;
      metrics_.add("rpc.timeouts");
      metrics_.add(info.timeouts_name);
      metrics_.end_span(call_span, sim_.now(), "timeout");
    } else {
      metrics_.end_span(call_span, sim_.now(), "failed");
    }
  }
  co_return outcome;
}

Task<void> RpcNetwork::serve(NodeId from, NodeId to, MethodId method,
                             Payload request,
                             OneShot<Result<Payload>> reply_to,
                             std::uint64_t call_span, std::uint32_t home) {
  const MethodInfo& info = this->info(method);  // deque: stable across awaits
  const std::uint64_t serve_span = metrics_.begin_span(
      info.serve_name, topology_.name(from), sim_.now(), call_span);
  const Handler* handler = find_handler(to, method);
  Result<Payload> result{Payload{}};
  if (handler != nullptr) {
    result = co_await (*handler)(from, std::move(request));
  } else {
    result = Failure{FailureKind::kNotFound, info.not_found_detail};
  }

  // Send the reply back; it travels the (possibly changed) live path and is
  // lost if the topology no longer connects the two nodes. The caller then
  // only learns via its timeout, since nothing can cross the partition.
  const auto reply_latency = delivery_latency(to, from);
  if (!reply_latency) {
    ++shard_stats_[lane()].messages_dropped;
    metrics_.add("rpc.messages_dropped");
    metrics_.end_span(serve_span, sim_.now(), "dropped");
    co_return;
  }
  metrics_.end_span(serve_span, sim_.now(), result ? "ok" : "failed");
  // The reply is delivered on the caller's home shard, where the OneShot's
  // waiter and timeout live.
  sim_.schedule_on(
      home, *reply_latency,
      [this, from, to, reply_to, res = std::move(result)]() mutable {
        if (!topology_.is_up(from) || !route_alive(to, from)) {
          ++shard_stats_[lane()].messages_dropped;
          metrics_.add("rpc.messages_dropped");
          return;
        }
        ++shard_stats_[lane()].messages_delivered;
        metrics_.add("rpc.messages_delivered");
        reply_to.try_set(std::move(res));
      });
}

}  // namespace weakset
