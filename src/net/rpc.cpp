#include "net/rpc.hpp"

#include <utility>

namespace weakset {

std::optional<Duration> RpcNetwork::delivery_latency(NodeId from, NodeId to) {
  if (from == to) {
    return options_.local_latency;
  }
  const auto base = topology_.path_latency(from, to);
  if (!base) return std::nullopt;
  const double factor = 1.0 + options_.jitter * rng_.uniform_double();
  return Duration::nanos(static_cast<std::int64_t>(
      static_cast<double>(base->count_nanos()) * factor));
}

Task<Result<std::any>> RpcNetwork::call(NodeId from, NodeId to,
                                        std::string method, std::any request,
                                        Duration timeout) {
  ++stats_.calls;
  metrics_.add("rpc.calls");
  const SimTime call_started = sim_.now();
  const std::uint64_t call_span =
      metrics_.begin_span(method, topology_.name(to), call_started);
  OneShot<Result<std::any>> reply{sim_};

  // Arm the timeout first: it must fire even if everything else is dropped.
  const auto timeout_timer =
      sim_.schedule_cancellable(timeout, [reply]() mutable {
        reply.try_set(Failure{FailureKind::kTimeout, "rpc deadline exceeded"});
      });

  const auto request_latency = delivery_latency(from, to);
  if (!request_latency) {
    // No live path. With detectable failures (the paper's assumption) the
    // transport signals this quickly; otherwise the timeout stands alone.
    if (options_.fast_fail_unreachable) {
      sim_.schedule(options_.detection_delay, [this, to, reply]() mutable {
        const auto kind = topology_.is_up(to) ? FailureKind::kPartitioned
                                              : FailureKind::kNodeCrashed;
        reply.try_set(Failure{kind, "destination unreachable"});
      });
    }
  } else {
    // Deliver the request after the path latency. Reachability is re-checked
    // at delivery time: a partition or crash occurring while the message is
    // in flight loses the message.
    sim_.schedule(*request_latency, [this, from, to, method, reply, call_span,
                                     req = std::move(request)]() mutable {
      if (!topology_.is_up(to) || !topology_.can_communicate(from, to)) {
        ++stats_.messages_dropped;
        metrics_.add("rpc.messages_dropped");
        return;  // lost; the caller's timeout will fire
      }
      ++stats_.messages_delivered;
      metrics_.add("rpc.messages_delivered");
      sim_.spawn(serve(from, to, std::move(method), std::move(req), reply,
                       call_span));
    });
  }

  Result<std::any> outcome = co_await reply.wait();
  timeout_timer.cancel();
  // `method` stays valid across the co_await: the delivery lambda captured
  // its own copy, so the frame's parameter was never moved from.
  metrics_.record("rpc." + method + ".latency_ns", sim_.now() - call_started);
  if (outcome) {
    ++stats_.completed;
    metrics_.add("rpc.completed");
    metrics_.add("rpc." + method + ".ok");
    metrics_.end_span(call_span, sim_.now(), "ok");
  } else {
    ++stats_.failed;
    metrics_.add("rpc.failed");
    metrics_.add("rpc." + method + ".failed");
    if (outcome.error().kind == FailureKind::kTimeout) {
      ++stats_.timeouts;
      metrics_.add("rpc.timeouts");
      metrics_.add("rpc." + method + ".timeouts");
      metrics_.end_span(call_span, sim_.now(), "timeout");
    } else {
      metrics_.end_span(call_span, sim_.now(), "failed");
    }
  }
  co_return outcome;
}

Task<void> RpcNetwork::serve(NodeId from, NodeId to, std::string method,
                             std::any request,
                             OneShot<Result<std::any>> reply_to,
                             std::uint64_t call_span) {
  const std::uint64_t serve_span = metrics_.begin_span(
      method + "#serve", topology_.name(from), sim_.now(), call_span);
  Result<std::any> result =
      Failure{FailureKind::kNotFound, "no handler for " + method};
  const auto it = handlers_.find(key(to, method));
  if (it != handlers_.end()) {
    result = co_await it->second(from, std::move(request));
  }

  // Send the reply back; it travels the (possibly changed) live path and is
  // lost if the topology no longer connects the two nodes. The caller then
  // only learns via its timeout, since nothing can cross the partition.
  const auto reply_latency = delivery_latency(to, from);
  if (!reply_latency) {
    ++stats_.messages_dropped;
    metrics_.add("rpc.messages_dropped");
    metrics_.end_span(serve_span, sim_.now(), "dropped");
    co_return;
  }
  metrics_.end_span(serve_span, sim_.now(), result ? "ok" : "failed");
  sim_.schedule(*reply_latency,
                [this, from, to, reply_to, res = std::move(result)]() mutable {
                  if (!topology_.is_up(from) ||
                      !topology_.can_communicate(to, from)) {
                    ++stats_.messages_dropped;
                    metrics_.add("rpc.messages_dropped");
                    return;
                  }
                  ++stats_.messages_delivered;
                  metrics_.add("rpc.messages_delivered");
                  reply_to.try_set(std::move(res));
                });
}

}  // namespace weakset
