#pragma once

// RPC over the simulated topology.
//
// The paper's model (section 2.1): "Processes (e.g., clients and servers)
// communicate via remote procedure calls. Thus the execution of an operation
// by a client at one node might actually involve a remote call to the
// operation exported by a server at a different node. ... We assume we can
// detect failures, e.g., those signaled from the lower network and transport
// layers."
//
// RpcNetwork delivers a request after the live path latency (with jitter),
// runs the registered handler as a server-side process, and delivers the
// reply the same way. Crashes and partitions drop messages; the caller
// observes either a fast "detected" failure (the paper's assumption, default)
// or a timeout.

#include <any>
#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace weakset {

/// Tuning knobs for the RPC substrate.
struct RpcOptions {
  /// Deadline for a call when none is given explicitly.
  Duration default_timeout = Duration::seconds(2);
  /// Cost of a same-node "RPC" (kernel round trip, not network).
  Duration local_latency = Duration::micros(20);
  /// Per-message multiplicative jitter: delivery takes latency * U[1, 1+j].
  double jitter = 0.2;
  /// If true, an unreachable destination is reported after `detection_delay`
  /// (lower layers signal the failure, per the paper). If false, the caller
  /// burns the full timeout.
  bool fast_fail_unreachable = true;
  /// How long the transport takes to signal an unreachable destination.
  Duration detection_delay = Duration::millis(2);
  /// Telemetry sink: per-op latency histograms, outcome counters, and call
  /// spans land here. nullptr = the process-global registry (obs::global()).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Counters for benchmarks (message cost of the different semantics).
struct RpcStats {
  std::uint64_t calls = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
};

/// The RPC fabric shared by all nodes of one simulation.
class RpcNetwork {
 public:
  /// A server-side method: receives the caller's node and the request payload,
  /// returns the reply. Runs as a process on the simulator, so it may
  /// co_await (disk latency, nested RPCs, ...).
  using Handler =
      std::function<Task<Result<std::any>>(NodeId from, std::any request)>;

  RpcNetwork(Simulator& sim, Topology& topology, Rng rng,
             RpcOptions options = {})
      : sim_(sim),
        topology_(topology),
        rng_(rng),
        options_(options),
        metrics_(obs::sink(options.metrics)) {}
  RpcNetwork(const RpcNetwork&) = delete;
  RpcNetwork& operator=(const RpcNetwork&) = delete;

  /// Registers (or replaces) `method` on `node`.
  void register_handler(NodeId node, std::string method, Handler handler) {
    handlers_[key(node, method)] = std::move(handler);
  }

  /// Calls `method` on `to` from `from` with the default timeout.
  Task<Result<std::any>> call(NodeId from, NodeId to, std::string method,
                              std::any request) {
    return call(from, to, std::move(method), std::move(request),
                options_.default_timeout);
  }

  /// Calls `method` on `to` from `from`, failing with kTimeout after
  /// `timeout` if no reply (or detected failure) arrives sooner.
  Task<Result<std::any>> call(NodeId from, NodeId to, std::string method,
                              std::any request, Duration timeout);

  /// Typed convenience wrapper: casts the reply payload to `Resp`.
  ///
  /// Deliberately NOT a coroutine: GCC 12 miscompiles by-value coroutine
  /// parameters of aggregate type passed as temporaries (the frame aliases
  /// the caller's temporary instead of copying it). The user's `Req` struct
  /// is boxed into std::any here, in a plain function frame, and only
  /// non-aggregate types cross the coroutine boundary. This constraint holds
  /// library-wide: coroutine by-value parameters must be non-aggregates.
  template <typename Resp, typename Req>
  Task<Result<Resp>> call_typed(NodeId from, NodeId to, std::string method,
                                Req request,
                                std::optional<Duration> timeout = {}) {
    return call_typed_impl<Resp>(from, to, std::move(method),
                                 std::any{std::move(request)},
                                 timeout.value_or(options_.default_timeout));
  }

  [[nodiscard]] const RpcStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] Topology& topology() noexcept { return topology_; }
  [[nodiscard]] const RpcOptions& options() const noexcept { return options_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }

 private:
  static std::string key(NodeId node, const std::string& method) {
    return std::to_string(node.raw()) + "/" + method;
  }

  template <typename Resp>
  Task<Result<Resp>> call_typed_impl(NodeId from, NodeId to,
                                     std::string method, std::any request,
                                     Duration timeout) {
    Result<std::any> raw =
        co_await call(from, to, std::move(method), std::move(request), timeout);
    if (!raw) co_return std::move(raw).error();
    Resp* typed = std::any_cast<Resp>(&raw.value());
    assert(typed != nullptr && "RPC reply type mismatch");
    co_return std::move(*typed);
  }

  /// One-way delivery latency for the current live path, with jitter; nullopt
  /// if no live path exists right now.
  std::optional<Duration> delivery_latency(NodeId from, NodeId to);

  /// Server-side: runs the handler and sends the reply back. `call_span` is
  /// the caller's span id; the serve span nests under it.
  Task<void> serve(NodeId from, NodeId to, std::string method,
                   std::any request, OneShot<Result<std::any>> reply_to,
                   std::uint64_t call_span);

  Simulator& sim_;
  Topology& topology_;
  Rng rng_;
  RpcOptions options_;
  obs::MetricsRegistry& metrics_;
  std::unordered_map<std::string, Handler> handlers_;
  RpcStats stats_;
};

}  // namespace weakset
