#pragma once

// RPC over the simulated topology.
//
// The paper's model (section 2.1): "Processes (e.g., clients and servers)
// communicate via remote procedure calls. Thus the execution of an operation
// by a client at one node might actually involve a remote call to the
// operation exported by a server at a different node. ... We assume we can
// detect failures, e.g., those signaled from the lower network and transport
// layers."
//
// RpcNetwork delivers a request after the live path latency (with jitter),
// runs the registered handler as a server-side process, and delivers the
// reply the same way. Crashes and partitions drop messages; the caller
// observes either a fast "detected" failure (the paper's assumption, default)
// or a timeout.
//
// Hot-path memory discipline (DESIGN.md decision 13): method names are
// interned once into a dense MethodId table — dispatch is an index lookup,
// and the per-method metric/span names ("rpc.<m>.latency_ns", "<m>#serve",
// ...) are precomputed at intern time so telemetry strings are never rebuilt
// per call. Payloads travel in pooled Payload boxes instead of std::any, and
// live-path latencies are cached against the topology version instead of
// re-running Dijkstra per message. None of this changes simulated-time
// behaviour: RNG draws, event ordering, and every metric/span name are
// byte-identical to the string-keyed implementation.
//
// Sharded simulations (DESIGN.md decision 14): every mutable hot-path state
// splits per shard — jitter RNG streams, route caches, and stats counters are
// per-shard lanes indexed by shardctx::current, so parallel shard workers
// never contend and every draw is a function of the schedule, not of the
// worker count. A call's lifecycle is shard-affine: the timeout timer and the
// reply delivery live on the *caller's home shard* (captured at call start),
// the request delivery and the handler run on the callee's shard
// (Simulator::node_shard), and the two sides only meet through the
// simulator's lookahead barriers. In unsharded simulations everything below
// collapses to the single lane 0 and behaves byte-identically to before.

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "util/payload.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"
#include "util/shard.hpp"

namespace weakset {

/// Tuning knobs for the RPC substrate.
struct RpcOptions {
  /// Deadline for a call when none is given explicitly.
  Duration default_timeout = Duration::seconds(2);
  /// Cost of a same-node "RPC" (kernel round trip, not network).
  Duration local_latency = Duration::micros(20);
  /// Per-message multiplicative jitter: delivery takes latency * U[1, 1+j].
  double jitter = 0.2;
  /// If true, an unreachable destination is reported after `detection_delay`
  /// (lower layers signal the failure, per the paper). If false, the caller
  /// burns the full timeout.
  bool fast_fail_unreachable = true;
  /// How long the transport takes to signal an unreachable destination.
  Duration detection_delay = Duration::millis(2);
  /// Telemetry sink: per-op latency histograms, outcome counters, and call
  /// spans land here. nullptr = the process-global registry (obs::global()).
  obs::MetricsRegistry* metrics = nullptr;
};

/// Counters for benchmarks (message cost of the different semantics).
struct RpcStats {
  std::uint64_t calls = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
};

/// Dense identifier of an interned RPC method name, scoped to the RpcNetwork
/// that minted it. Hot call sites intern once (RpcNetwork::intern) and call
/// by id; string call sites intern transparently per call (a hash lookup, no
/// allocation). Deliberately a non-aggregate: MethodId crosses coroutine
/// boundaries by value, and the library-wide GCC 12 rule is that coroutine
/// by-value parameters must be non-aggregates.
class MethodId {
 public:
  MethodId() : index_(kInvalid) {}

  [[nodiscard]] bool valid() const noexcept { return index_ != kInvalid; }
  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }

  friend bool operator==(MethodId a, MethodId b) {
    return a.index_ == b.index_;
  }

 private:
  friend class RpcNetwork;
  explicit MethodId(std::uint32_t index) : index_(index) {}
  static constexpr std::uint32_t kInvalid = ~std::uint32_t{0};
  std::uint32_t index_;
};

/// The RPC fabric shared by all nodes of one simulation.
class RpcNetwork {
 public:
  /// A server-side method: receives the caller's node and the request payload,
  /// returns the reply. Runs as a process on the simulator, so it may
  /// co_await (disk latency, nested RPCs, ...).
  using Handler =
      std::function<Task<Result<Payload>>(NodeId from, Payload request)>;

  RpcNetwork(Simulator& sim, Topology& topology, Rng rng,
             RpcOptions options = {})
      : sim_(sim),
        topology_(topology),
        rng_(rng),
        options_(options),
        metrics_(obs::sink(options.metrics)),
        sharded_(sim.sharded()) {
    // One lane per shard (incl. the serial shard) in sharded mode; one lane
    // total otherwise. Per-shard RNG streams are forked up front so the
    // draws a shard makes depend only on its own schedule.
    const std::size_t lanes = sharded_ ? sim.shard_count() + 1 : 1;
    route_caches_.resize(lanes);
    shard_stats_.resize(lanes);
    if (sharded_) {
      shard_rngs_.reserve(lanes);
      for (std::size_t i = 0; i < lanes; ++i) {
        shard_rngs_.push_back(rng_.fork());
      }
    }
  }
  RpcNetwork(const RpcNetwork&) = delete;
  RpcNetwork& operator=(const RpcNetwork&) = delete;

  /// Interns `method` (idempotent), returning its dense id. Ids are stable
  /// for the lifetime of this network.
  MethodId intern(std::string_view method);

  /// The interned name behind `method`.
  [[nodiscard]] const std::string& method_name(MethodId method) const {
    return info(method).name;
  }

  /// Registers (or replaces) `method` on `node`. Node ids are the dense ids
  /// minted by Topology::add_node.
  void register_handler(NodeId node, MethodId method, Handler handler);
  void register_handler(NodeId node, std::string_view method,
                        Handler handler) {
    register_handler(node, intern(method), std::move(handler));
  }

  /// The handler registered for (node, method), or nullptr. The serve path
  /// dispatches through this same dense table.
  [[nodiscard]] const Handler* find_handler(NodeId node,
                                            MethodId method) const;

  /// Calls `method` on `to` from `from` with the default timeout.
  Task<Result<Payload>> call(NodeId from, NodeId to, MethodId method,
                             Payload request) {
    return call(from, to, method, std::move(request),
                options_.default_timeout);
  }
  Task<Result<Payload>> call(NodeId from, NodeId to, std::string_view method,
                             Payload request) {
    return call(from, to, intern(method), std::move(request),
                options_.default_timeout);
  }

  /// Calls `method` on `to` from `from`, failing with kTimeout after
  /// `timeout` if no reply (or detected failure) arrives sooner.
  Task<Result<Payload>> call(NodeId from, NodeId to, MethodId method,
                             Payload request, Duration timeout);
  Task<Result<Payload>> call(NodeId from, NodeId to, std::string_view method,
                             Payload request, Duration timeout) {
    return call(from, to, intern(method), std::move(request), timeout);
  }

  /// Typed convenience wrapper: casts the reply payload to `Resp`.
  ///
  /// Deliberately NOT a coroutine: GCC 12 miscompiles by-value coroutine
  /// parameters of aggregate type passed as temporaries (the frame aliases
  /// the caller's temporary instead of copying it). The user's `Req` struct
  /// is boxed into a Payload here, in a plain function frame, and only
  /// non-aggregate types cross the coroutine boundary. This constraint holds
  /// library-wide: coroutine by-value parameters must be non-aggregates.
  template <typename Resp, typename Req>
  Task<Result<Resp>> call_typed(NodeId from, NodeId to, MethodId method,
                                Req request,
                                std::optional<Duration> timeout = {}) {
    return call_typed_impl<Resp>(from, to, method, Payload{std::move(request)},
                                 timeout.value_or(options_.default_timeout));
  }
  template <typename Resp, typename Req>
  Task<Result<Resp>> call_typed(NodeId from, NodeId to,
                                std::string_view method, Req request,
                                std::optional<Duration> timeout = {}) {
    return call_typed<Resp>(from, to, intern(method), std::move(request),
                            timeout);
  }

  /// Aggregate call/message counters, summed over the per-shard lanes.
  /// Returned by value: the per-lane split is an implementation detail.
  [[nodiscard]] RpcStats stats() const noexcept;
  [[nodiscard]] Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] Topology& topology() noexcept { return topology_; }
  [[nodiscard]] const RpcOptions& options() const noexcept { return options_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }

 private:
  /// Everything derived from a method name, computed once at intern time.
  struct MethodInfo {
    std::string name;
    std::string latency_name;      // "rpc.<name>.latency_ns"
    std::string ok_name;           // "rpc.<name>.ok"
    std::string failed_name;       // "rpc.<name>.failed"
    std::string timeouts_name;     // "rpc.<name>.timeouts"
    std::string serve_name;        // "<name>#serve"
    std::string not_found_detail;  // "no handler for <name>"
  };

  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  [[nodiscard]] const MethodInfo& info(MethodId method) const {
    assert(method.valid() && method.index() < methods_.size());
    return methods_[method.index()];
  }

  template <typename Resp>
  Task<Result<Resp>> call_typed_impl(NodeId from, NodeId to, MethodId method,
                                     Payload request, Duration timeout) {
    Result<Payload> raw =
        co_await call(from, to, method, std::move(request), timeout);
    if (!raw) co_return std::move(raw).error();
    Resp* typed = payload_cast<Resp>(&raw.value());
    assert(typed != nullptr && "RPC reply type mismatch");
    co_return std::move(*typed);
  }

  /// One-way delivery latency for the current live path, with jitter; nullopt
  /// if no live path exists right now.
  std::optional<Duration> delivery_latency(NodeId from, NodeId to);

  /// Cached jitter-free live-path latency (the route cache): recomputed
  /// lazily per (from, to) pair, invalidated wholesale whenever the topology
  /// version moves. Semantically identical to Topology::path_latency.
  std::optional<Duration> base_latency(NodeId from, NodeId to);

  /// Cached Topology::can_communicate (a live path exists, endpoints up).
  bool route_alive(NodeId from, NodeId to) {
    return base_latency(from, to).has_value();
  }

  /// Server-side: runs the handler and sends the reply back. `call_span` is
  /// the caller's span id; the serve span nests under it. `home` is the
  /// caller's shard — the reply is scheduled there so the OneShot completes
  /// on the same shard that armed the timeout.
  Task<void> serve(NodeId from, NodeId to, MethodId method, Payload request,
                   OneShot<Result<Payload>> reply_to, std::uint64_t call_span,
                   std::uint32_t home);

  /// The per-shard lane index for mutable hot-path state (0 when unsharded).
  [[nodiscard]] std::size_t lane() const noexcept {
    return sharded_ ? shardctx::current : 0;
  }

  Simulator& sim_;
  Topology& topology_;
  Rng rng_;
  RpcOptions options_;
  obs::MetricsRegistry& metrics_;
  bool sharded_;

  /// Intern table. A deque so MethodInfo addresses stay stable while new
  /// methods are interned mid-call (references are held across co_awaits).
  std::deque<MethodInfo> methods_;
  std::unordered_map<std::string, std::uint32_t, StringHash, std::equal_to<>>
      method_index_;
  /// Dense dispatch table: handlers_[node][method].
  std::vector<std::vector<Handler>> handlers_;

  /// Route cache: latency nanos per (from, to), kRouteUnknown when not yet
  /// computed for the current topology version, kRouteNoPath when down.
  /// One cache per lane — shards warm their caches independently (the
  /// underlying Topology reads are const and safe to run concurrently).
  static constexpr std::int64_t kRouteUnknown = -1;
  static constexpr std::int64_t kRouteNoPath = -2;
  struct RouteCache {
    std::vector<std::int64_t> latency;
    std::uint64_t version = ~std::uint64_t{0};
    std::size_t nodes = 0;
  };
  std::vector<RouteCache> route_caches_;

  /// Per-lane jitter streams (sharded mode only; unsharded draws from rng_).
  std::vector<Rng> shard_rngs_;
  /// Per-lane counters; stats() sums them.
  std::vector<RpcStats> shard_stats_;
};

}  // namespace weakset
