#pragma once

// Network topology: nodes, links, crashes, and partitions.
//
// This is the substrate for the paper's distributed-system model (section
// 2.1): "a set of connected nodes, not necessarily strongly connected ...
// Nodes may crash and communication links may fail. These failures may lead
// to network partitions, which implies that a process at one node may not be
// able to access objects residing at a node in a different partition."

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace weakset {

struct NodeTag {};
/// Identifies a node (workstation / server) in the simulated network.
using NodeId = Id<NodeTag>;

/// The mutable map of nodes and links. Communication paths and latencies are
/// derived from it; crashing nodes or cutting links immediately changes what
/// is reachable (the basis of the paper's `reachable` construct).
class Topology {
 public:
  /// How messages may travel. kMultiHop routes through intermediate up
  /// nodes (every node is a transit); kDirectOnly requires a direct live
  /// link — the overlay view where "a partition between N and C" (Figure 2)
  /// severs exactly that pair.
  enum class Routing { kMultiHop, kDirectOnly };

  /// Adds a node (initially up). `name` is for logs and examples.
  NodeId add_node(std::string name);

  void set_routing(Routing routing) {
    routing_ = routing;
    bump();
  }
  [[nodiscard]] Routing routing() const noexcept { return routing_; }

  /// Adds a bidirectional link with the given one-way latency. Re-connecting
  /// an existing pair updates its latency.
  void connect(NodeId a, NodeId b, Duration latency);

  /// Convenience: connect every node to every other with `latency`.
  void connect_full_mesh(Duration latency);

  // -- failure injection -----------------------------------------------------

  /// How a crash treats the node's volatile state. kTransient is the
  /// historical behaviour — the node is merely unreachable and resurrects
  /// with its memory intact (indistinguishable from a long partition).
  /// kAmnesia is a real power loss: liveness listeners (the store layer)
  /// wipe volatile state at crash time and run durable recovery on restart.
  enum class CrashKind : std::uint8_t { kTransient, kAmnesia };

  /// Listener for crash/restart transitions, dispatched synchronously from
  /// crash()/restart(). restart is passed the kind that took the node down.
  struct LivenessListener {
    std::function<void(NodeId, CrashKind)> on_crash;
    std::function<void(NodeId, CrashKind)> on_restart;
  };

  /// Takes a node down (a crash). Messages to/through it are lost. Crashing
  /// an already-down node is a no-op (the kind does not change mid-outage).
  void crash(NodeId node) { crash(node, CrashKind::kTransient); }
  void crash(NodeId node, CrashKind kind);
  /// Brings a crashed node back and notifies listeners with the crash kind
  /// that took it down. No-op if the node is already up.
  void restart(NodeId node);
  [[nodiscard]] bool is_up(NodeId node) const;
  /// Kind of the most recent crash of `node` (meaningful once it crashed).
  [[nodiscard]] CrashKind last_crash_kind(NodeId node) const;

  /// Registers a liveness listener; returns a token for remove. Listeners
  /// must outlive the topology or deregister first (the Repository does so
  /// in its destructor).
  std::size_t add_liveness_listener(LivenessListener listener);
  void remove_liveness_listener(std::size_t token);

  /// Cuts or restores a single link (both directions).
  void set_link_up(NodeId a, NodeId b, bool up);
  [[nodiscard]] bool link_up(NodeId a, NodeId b) const;

  /// Partitions the network into the given groups: every link between nodes
  /// of different groups goes down; links inside a group come up (if they
  /// exist). Nodes not listed keep their current links.
  void partition(const std::vector<std::vector<NodeId>>& groups);

  /// Restores every link.
  void heal();

  // -- derived queries ---------------------------------------------------

  /// True iff a path of up links through up nodes connects `from` to `to`
  /// (both endpoints must be up). A node can always communicate with itself
  /// while up.
  [[nodiscard]] bool can_communicate(NodeId from, NodeId to) const;

  /// Latency of the cheapest live path, or nullopt if none exists. This also
  /// serves as the "closeness" metric for the dynamic-sets prefetcher
  /// (the paper's "fetching closer files first", section 1.1).
  [[nodiscard]] std::optional<Duration> path_latency(NodeId from,
                                                     NodeId to) const;

  [[nodiscard]] const std::vector<NodeId>& nodes() const { return node_ids_; }
  [[nodiscard]] const std::string& name(NodeId node) const;
  [[nodiscard]] std::size_t node_count() const { return node_ids_.size(); }

  /// Monotone counter bumped on every topology mutation; lets caches know
  /// when derived data (routes) is stale.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

 private:
  struct Link {
    std::size_t peer;  // dense index of the other endpoint
    Duration latency;
    bool up = true;
  };
  struct Node {
    std::string name;
    bool up = true;
    CrashKind last_crash = CrashKind::kTransient;
    std::vector<Link> links;
  };

  [[nodiscard]] std::size_t index(NodeId node) const;
  Link* find_link(std::size_t from, std::size_t to);
  void bump() { ++version_; }

  std::vector<Node> nodes_;
  std::vector<NodeId> node_ids_;
  // nullopt slots are removed listeners; indices stay stable as tokens.
  std::vector<std::optional<LivenessListener>> listeners_;
  std::uint64_t version_ = 0;
  Routing routing_ = Routing::kMultiHop;
};

}  // namespace weakset
