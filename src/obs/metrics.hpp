#pragma once

// Simulated-time observability: counters, latency histograms, RPC spans.
//
// Every module of the distributed substrate records what it does into a
// MetricsRegistry — monotonic counters, fixed log-bucket histograms of
// simulated-time latencies (or plain values), and lightweight spans (start
// and end *simulated* time, peer, operation, outcome). Because the whole
// system runs under the virtual clock (DESIGN.md section 3.3), a registry is
// a pure function of the run's seeds: two runs of the same seed produce
// byte-identical to_json() exports, which is what lets CI diff telemetry
// snapshots with tight tolerances (scripts/metrics_diff.py).
//
// Wiring: components accept a `MetricsRegistry*` through their options
// structs; nullptr (the default everywhere) means "record into the
// process-global registry" (obs::global()), so benches and tests get a full
// telemetry snapshot with zero wiring, while unit tests that want isolation
// pass their own registry. Recording never consumes randomness and never
// schedules simulator events, so instrumented and uninstrumented runs have
// identical timing and interleaving.
//
// Sharded simulations (DESIGN.md decision 14): enable_sharding(n) puts a
// per-shard child registry in front of this one — recordings route to the
// child named by shardctx::current, so parallel shard workers never touch a
// shared map. Accessors sum over children and to_json() folds them in shard
// order, which keeps exports byte-identical for any worker count (the shard
// an event records from is a property of the schedule, not of threading).
// Span ids carry their child index in the high bits so cross-shard parent
// links and end_span routing stay exact.

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace weakset::obs {

/// Fixed log-bucket histogram over non-negative int64 values (latencies are
/// recorded as nanoseconds of simulated time). Values below 16 get exact
/// buckets; above that, each power-of-two range is split into 16 linear
/// sub-buckets, bounding the relative quantisation error at 1/16 (6.25%).
/// All state is integral, so merging and exporting are exact.
class Histogram {
 public:
  /// Records one value (negative values clamp to 0).
  void record(std::int64_t value);
  void record(Duration d) { record(d.count_nanos()); }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::int64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::int64_t min() const noexcept {
    return count_ == 0 ? 0 : min_;
  }
  [[nodiscard]] std::int64_t max() const noexcept { return max_; }

  /// Value at quantile `q` in [0, 1]: the upper bound of the bucket holding
  /// the rank-ceil(q*count) recording, clamped to the exact max. 0 if empty.
  [[nodiscard]] std::int64_t percentile(double q) const;

  /// Bucket-wise merge (exact).
  void merge(const Histogram& other);

  /// Non-empty buckets as (lower bound, count), ascending.
  [[nodiscard]] std::vector<std::pair<std::int64_t, std::uint64_t>>
  nonzero_buckets() const;

  // Bucket arithmetic, exposed for the unit tests.
  [[nodiscard]] static std::size_t bucket_index(std::int64_t value) noexcept;
  [[nodiscard]] static std::int64_t bucket_lower(std::size_t index) noexcept;
  [[nodiscard]] static std::int64_t bucket_upper(std::size_t index) noexcept;

 private:
  std::vector<std::uint64_t> buckets_;  // grown on demand
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ = 0;
};

/// One completed (or still open) operation span on the simulated clock.
struct Span {
  std::uint64_t id = 0;      ///< 1-based; 0 is "no span" (see parent)
  std::uint64_t parent = 0;  ///< enclosing span id, 0 = root
  std::string op;            ///< operation name (e.g. the RPC method)
  std::string peer;          ///< remote party (topology node name)
  SimTime start;
  SimTime end;
  std::string outcome;  ///< "ok", "failed", "timeout", "dropped", ...
};

/// The metrics sink: named counters, named histograms, and a bounded span
/// log. Deterministic by construction — keys are kept in lexicographic
/// order, span ids in allocation order, and every exported quantity is
/// integral.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // -- sharding --------------------------------------------------------------

  /// Puts `shards` child registries in front of this one: recordings made
  /// while shardctx::current == s land in child s, and exports/accessors
  /// fold self + children in shard order. Idempotent; a larger count grows
  /// the child table (existing children keep their data and span-id space).
  /// Must not be called while a parallel window is executing.
  void enable_sharding(std::size_t shards);
  [[nodiscard]] bool sharding_enabled() const noexcept {
    return !children_.empty();
  }

  /// Span ids are `(child + 1) << kSpanShardShift | local` in sharded mode
  /// (plain ascending locals otherwise), so end_span can route to the child
  /// that opened the span.
  static constexpr unsigned kSpanShardShift = 44;

  // -- counters --------------------------------------------------------------

  /// Adds `delta` to the named monotonic counter (creating it at 0).
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Current counter value (0 if never touched).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const;

  // -- histograms ------------------------------------------------------------

  /// Records a simulated-time latency, in nanoseconds, into the named
  /// histogram. Convention: duration-valued histogram names end in "_ns".
  void record(std::string_view name, Duration d) {
    record_value(name, d.count_nanos());
  }

  /// Records a plain value (queue depth, batch size, ...).
  void record_value(std::string_view name, std::int64_t value);

  /// The named histogram, or nullptr if nothing was recorded under `name`.
  /// In sharded mode this is a folded snapshot of self + children, valid
  /// until the next histogram() or clear() call.
  [[nodiscard]] const Histogram* histogram(std::string_view name) const;

  // -- spans -----------------------------------------------------------------

  /// Opens a span at simulated time `at`; returns its id (ids are allocated
  /// even past the retention cap, so capping never perturbs determinism).
  /// `op` and `peer` are copied; steady-state opens reuse recycled span
  /// storage, so the copy costs no allocation once the system is warm.
  std::uint64_t begin_span(std::string_view op, std::string_view peer,
                           SimTime at, std::uint64_t parent = 0);

  /// Closes span `id` with `outcome`. The first span_cap() completed spans
  /// are retained for export; later ones only count into spans_dropped.
  void end_span(std::uint64_t id, SimTime at, std::string_view outcome);

  [[nodiscard]] std::uint64_t spans_started() const noexcept;
  [[nodiscard]] std::uint64_t spans_finished() const noexcept;
  [[nodiscard]] std::uint64_t spans_dropped() const noexcept;
  /// Spans retained by this registry itself (not its shard children).
  [[nodiscard]] const std::vector<Span>& retained_spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] std::size_t span_cap() const noexcept { return span_cap_; }
  void set_span_cap(std::size_t cap) noexcept { span_cap_ = cap; }

  // -- aggregation & export --------------------------------------------------

  /// Folds `other` into this registry: counters and histograms add
  /// bucket-wise, retained spans append up to the cap (the rest count as
  /// dropped). `other` is unchanged.
  void merge(const MetricsRegistry& other);

  /// Deterministic JSON snapshot: same recordings → byte-identical string.
  /// Everything is integral; keys are sorted; spans are in allocation order.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_json() to `path` (plus a trailing newline). Returns false on
  /// I/O failure.
  bool write_json_file(const std::string& path) const;

  /// Drops all recorded state (counters, histograms, spans).
  void clear();

 private:
  using OpenSpanMap = std::map<std::uint64_t, Span>;

  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::vector<Span> spans_;     // first span_cap_ completed
  OpenSpanMap open_spans_;      // in-flight, keyed by id
  /// Recycled open_spans_ nodes: a span open/close in the steady state reuses
  /// a parked node (and its Span's string capacity) instead of allocating.
  std::vector<OpenSpanMap::node_type> span_node_stash_;
  std::uint64_t next_span_id_ = 1;
  std::uint64_t spans_started_ = 0;
  std::uint64_t spans_finished_ = 0;
  std::uint64_t spans_dropped_ = 0;
  std::size_t span_cap_ = kDefaultSpanCap;

  /// The child registry recordings route to (children_[shardctx::current],
  /// clamped). Only called when sharding_enabled().
  [[nodiscard]] MetricsRegistry& shard_child() const noexcept;

  /// Sharded front (enable_sharding): recordings route to
  /// children_[shardctx::current]; child c mints span ids offset by
  /// (c + 1) << kSpanShardShift. Empty in the classic single-thread mode.
  std::vector<std::unique_ptr<MetricsRegistry>> children_;
  std::uint64_t span_id_offset_ = 0;
  /// Scratch for histogram() in sharded mode (folded on demand).
  mutable std::map<std::string, Histogram, std::less<>> merged_scratch_;

  static constexpr std::size_t kDefaultSpanCap = 256;
};

/// The process-global registry: where every component records unless its
/// options carry an explicit registry. One per process, created on first use.
MetricsRegistry& global();

/// Resolves an options-struct pointer: `chosen` if non-null, else global().
inline MetricsRegistry& sink(MetricsRegistry* chosen) {
  return chosen != nullptr ? *chosen : global();
}

/// Strips a `--metrics-out=FILE` argument from argv (if present) and returns
/// FILE. Shared by the bench main (bench_common.hpp) and the conformance and
/// chaos test mains, so any run of those binaries can export its telemetry.
std::optional<std::string> extract_metrics_out(int& argc, char** argv);

}  // namespace weakset::obs
