#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>
#include <fstream>
#include <utility>

#include "util/shard.hpp"

namespace weakset::obs {

// ---------------------------------------------------------------------------
// Histogram

// Bucket layout: values 0..15 get exact buckets 0..15; for larger values the
// power-of-two range [2^m, 2^(m+1)) is split into 16 linear sub-buckets.
// Index = ((m - 3) << 4) + sub keeps the whole sequence contiguous:
// [16, 32) -> 16..31, [32, 64) -> 32..47, and so on.
namespace {
constexpr std::size_t kSubBits = 4;
constexpr std::int64_t kSub = std::int64_t{1} << kSubBits;
}  // namespace

std::size_t Histogram::bucket_index(std::int64_t value) noexcept {
  if (value < 0) value = 0;
  if (value < kSub) return static_cast<std::size_t>(value);
  const int msb = std::bit_width(static_cast<std::uint64_t>(value)) - 1;
  const int shift = msb - static_cast<int>(kSubBits);
  const auto sub =
      static_cast<std::size_t>((value >> shift) & (kSub - 1));
  return ((static_cast<std::size_t>(msb) - kSubBits + 1) << kSubBits) + sub;
}

std::int64_t Histogram::bucket_lower(std::size_t index) noexcept {
  const std::size_t group = index >> kSubBits;
  const auto sub = static_cast<std::int64_t>(index & (kSub - 1));
  if (group == 0) return sub;
  return (kSub + sub) << (group - 1);
}

std::int64_t Histogram::bucket_upper(std::size_t index) noexcept {
  // Upper bound is the next bucket's lower bound minus one; saturate at the
  // top of the int64 range.
  const std::int64_t next = bucket_lower(index + 1);
  if (next <= bucket_lower(index)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return next - 1;
}

void Histogram::record(std::int64_t value) {
  if (value < 0) value = 0;
  const std::size_t index = bucket_index(value);
  if (index >= buckets_.size()) buckets_.resize(index + 1, 0);
  ++buckets_[index];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

std::int64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based: the smallest rank r such that
  // r >= q * count (at least 1).
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      // The bucket's upper bound, clamped to the exact observed max (so the
      // top percentiles never exceed a value that was actually recorded).
      return std::min(bucket_upper(i), max_);
    }
  }
  return max_;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::vector<std::pair<std::int64_t, std::uint64_t>> Histogram::nonzero_buckets()
    const {
  std::vector<std::pair<std::int64_t, std::uint64_t>> out;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) out.emplace_back(bucket_lower(i), buckets_[i]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

void MetricsRegistry::enable_sharding(std::size_t shards) {
  while (children_.size() < shards) {
    auto child = std::make_unique<MetricsRegistry>();
    child->span_id_offset_ =
        static_cast<std::uint64_t>(children_.size() + 1) << kSpanShardShift;
    child->span_cap_ = span_cap_;
    children_.push_back(std::move(child));
  }
}

MetricsRegistry& MetricsRegistry::shard_child() const noexcept {
  const std::size_t shard = shardctx::current;
  assert(shard < children_.size() && "recording from an unregistered shard");
  return *children_[shard < children_.size() ? shard : children_.size() - 1];
}

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  if (!children_.empty()) {
    shard_child().add(name, delta);
    return;
  }
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    it->second += delta;
  } else {
    counters_.emplace(std::string{name}, delta);
  }
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  std::uint64_t total = it == counters_.end() ? 0 : it->second;
  for (const auto& child : children_) total += child->counter(name);
  return total;
}

void MetricsRegistry::record_value(std::string_view name, std::int64_t value) {
  if (!children_.empty()) {
    shard_child().record_value(name, value);
    return;
  }
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string{name}, Histogram{}).first;
  }
  it->second.record(value);
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  if (children_.empty()) {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }
  // Sharded: fold self + children into a scratch entry (valid until the next
  // histogram() or clear() call).
  Histogram folded;
  bool found = false;
  const auto self = histograms_.find(name);
  if (self != histograms_.end()) {
    folded.merge(self->second);
    found = true;
  }
  for (const auto& child : children_) {
    const auto it = child->histograms_.find(name);
    if (it != child->histograms_.end()) {
      folded.merge(it->second);
      found = true;
    }
  }
  if (!found) return nullptr;
  const auto pos =
      merged_scratch_.insert_or_assign(std::string{name}, std::move(folded))
          .first;
  return &pos->second;
}

std::uint64_t MetricsRegistry::begin_span(std::string_view op,
                                          std::string_view peer, SimTime at,
                                          std::uint64_t parent) {
  if (!children_.empty()) {
    return shard_child().begin_span(op, peer, at, parent);
  }
  const std::uint64_t id = span_id_offset_ + next_span_id_++;
  ++spans_started_;
  if (!span_node_stash_.empty()) {
    // Steady state: reuse a parked map node — the contained Span's strings
    // keep their capacity, so the copies below allocate nothing.
    auto node = std::move(span_node_stash_.back());
    span_node_stash_.pop_back();
    node.key() = id;
    Span& span = node.mapped();
    span.id = id;
    span.parent = parent;
    span.op.assign(op);
    span.peer.assign(peer);
    span.start = at;
    span.end = at;
    open_spans_.insert(std::move(node));
  } else {
    Span span;
    span.id = id;
    span.parent = parent;
    span.op = std::string{op};
    span.peer = std::string{peer};
    span.start = at;
    span.end = at;
    open_spans_.emplace(id, std::move(span));
  }
  return id;
}

void MetricsRegistry::end_span(std::uint64_t id, SimTime at,
                               std::string_view outcome) {
  if (!children_.empty()) {
    // Route to the child that minted the id (its index + 1 sits in the high
    // bits); ids from before enable_sharding fall through to self.
    const std::uint64_t child = id >> kSpanShardShift;
    if (child >= 1 && child <= children_.size()) {
      children_[child - 1]->end_span(id, at, outcome);
      return;
    }
  }
  const auto it = open_spans_.find(id);
  if (it == open_spans_.end()) return;  // unknown or already closed
  ++spans_finished_;
  auto node = open_spans_.extract(it);
  Span& span = node.mapped();
  span.end = at;
  if (spans_.size() < span_cap_) {
    span.outcome = std::string{outcome};
    spans_.push_back(std::move(span));  // steals buffers: pre-cap only
  } else {
    ++spans_dropped_;
  }
  span_node_stash_.push_back(std::move(node));
}

std::uint64_t MetricsRegistry::spans_started() const noexcept {
  std::uint64_t total = spans_started_;
  for (const auto& child : children_) total += child->spans_started_;
  return total;
}

std::uint64_t MetricsRegistry::spans_finished() const noexcept {
  std::uint64_t total = spans_finished_;
  for (const auto& child : children_) total += child->spans_finished_;
  return total;
}

std::uint64_t MetricsRegistry::spans_dropped() const noexcept {
  std::uint64_t total = spans_dropped_;
  for (const auto& child : children_) total += child->spans_dropped_;
  return total;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) add(name, value);
  for (const auto& [name, histogram] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.emplace(name, Histogram{}).first;
    }
    it->second.merge(histogram);
  }
  spans_started_ += other.spans_started_;
  spans_finished_ += other.spans_finished_;
  spans_dropped_ += other.spans_dropped_;
  for (const Span& span : other.spans_) {
    if (spans_.size() < span_cap_) {
      spans_.push_back(span);
    } else {
      ++spans_dropped_;
    }
  }
}

namespace {
/// Minimal JSON string escaping (the names used here are ASCII identifiers,
/// but be correct anyway).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string MetricsRegistry::to_json() const {
  if (!children_.empty()) {
    // Sharded: fold self + children (in shard order) into a plain registry
    // and export that. The shard an event records from is fixed by the
    // schedule, so the fold — and the exported bytes — are identical for any
    // worker count.
    MetricsRegistry folded;
    folded.span_cap_ = span_cap_;
    folded.merge(*this);  // merge() reads only the non-child state
    for (const auto& child : children_) folded.merge(*child);
    return folded.to_json();
  }
  // Built with sequential appends only: `"literal" + std::to_string(...)`
  // trips GCC 12's -Wrestrict false positive at -O2, and appends skip the
  // temporaries anyway.
  std::string out;
  const auto field = [&out](const char* key, auto value) {
    out += key;
    out += std::to_string(value);
  };
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    out += json_escape(name);
    out += "\": ";
    out += std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    out += json_escape(name);
    out += "\": {";
    field("\"count\": ", h.count());
    field(", \"sum\": ", h.sum());
    field(", \"min\": ", h.min());
    field(", \"max\": ", h.max());
    field(", \"p50\": ", h.percentile(0.50));
    field(", \"p90\": ", h.percentile(0.90));
    field(", \"p95\": ", h.percentile(0.95));
    field(", \"p99\": ", h.percentile(0.99));
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [lower, count] : h.nonzero_buckets()) {
      if (!first_bucket) out += ", ";
      first_bucket = false;
      field("[", lower);
      field(", ", count);
      out += "]";
    }
    out += "]}";
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"spans\": {\n";
  field("    \"started\": ", spans_started_);
  field(",\n    \"finished\": ", spans_finished_);
  field(",\n    \"dropped\": ", spans_dropped_);
  field(",\n    \"cap\": ", span_cap_);
  out += ",\n    \"log\": [";
  first = true;
  for (const Span& span : spans_) {
    out += first ? "\n" : ",\n";
    first = false;
    field("      {\"id\": ", span.id);
    field(", \"parent\": ", span.parent);
    out += ", \"op\": \"";
    out += json_escape(span.op);
    out += "\", \"peer\": \"";
    out += json_escape(span.peer);
    out += "\"";
    field(", \"start_ns\": ", span.start.count_nanos());
    field(", \"end_ns\": ", span.end.count_nanos());
    out += ", \"outcome\": \"";
    out += json_escape(span.outcome);
    out += "\"}";
  }
  out += first ? "]\n" : "\n    ]\n";
  out += "  }\n}";
  return out;
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream file{path};
  if (!file) return false;
  file << to_json() << "\n";
  return static_cast<bool>(file);
}

void MetricsRegistry::clear() {
  counters_.clear();
  histograms_.clear();
  spans_.clear();
  open_spans_.clear();
  span_node_stash_.clear();
  merged_scratch_.clear();
  next_span_id_ = 1;
  spans_started_ = 0;
  spans_finished_ = 0;
  spans_dropped_ = 0;
  // Children stay registered (and keep their span-id space) but drop their
  // recordings, so a cleared sharded registry starts the next run fresh.
  for (const auto& child : children_) child->clear();
}

MetricsRegistry& global() {
  static MetricsRegistry registry;
  return registry;
}

std::optional<std::string> extract_metrics_out(int& argc, char** argv) {
  constexpr std::string_view kFlag = "--metrics-out=";
  std::optional<std::string> path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg.substr(0, kFlag.size()) == kFlag) {
      path = std::string{arg.substr(kFlag.size())};
      continue;  // strip: downstream flag parsers must not see it
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
  return path;
}

}  // namespace weakset::obs
