#pragma once

// The two ls implementations the paper contrasts (section 1.1):
//
//   ls_strict   "the expected behavior of the UNIX-like command ls ... is to
//               list the files in the directory in some order (e.g.,
//               alphabetically), thus requiring that all files be accessed
//               before ls returns. In a distributed file system, satisfying
//               this requirement is prohibitively expensive; in the worst
//               case, because of failures some files may no longer be
//               accessible and so non-termination is possible."
//               Implemented as: read membership, fetch every file
//               sequentially, sort names; any unreachable file fails the
//               whole command.
//
//   ls_dynamic  ls over a dynamic set: names stream back in arrival order
//               (parallel prefetch, closest-first), inaccessible files are
//               skipped or awaited per the retry policy, and partial results
//               are delivered even under failures.

#include <string>
#include <vector>

#include "dynset/dynamic_set.hpp"
#include "fs/dist_fs.hpp"
#include "store/client.hpp"

namespace weakset {

/// What an ls run produced. With ls_dynamic, `arrival_times` records when
/// each name was delivered (time-to-first-entry measurements).
class LsResult {
 public:
  LsResult() = default;

  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }
  [[nodiscard]] const std::vector<SimTime>& arrival_times() const noexcept {
    return arrival_times_;
  }
  [[nodiscard]] bool complete() const noexcept { return complete_; }
  [[nodiscard]] const std::optional<Failure>& failure() const noexcept {
    return failure_;
  }

  void add(std::string name, SimTime at) {
    names_.push_back(std::move(name));
    arrival_times_.push_back(at);
  }
  void set_complete() { complete_ = true; }
  void set_failure(Failure failure) { failure_ = std::move(failure); }

 private:
  std::vector<std::string> names_;
  std::vector<SimTime> arrival_times_;
  bool complete_ = false;
  std::optional<Failure> failure_;
};

/// Strict POSIX-style ls: all files must be fetched before anything is
/// returned; names come back sorted. Fails outright if the directory or any
/// file is unreachable.
Task<LsResult> ls_strict(RepositoryClient& client, Directory dir);

/// ls over a dynamic set: names stream in arrival order; under failures the
/// result is partial (failure() set, names() holding what arrived).
Task<LsResult> ls_dynamic(RepositoryClient& client, Directory dir,
                          DynSetOptions options = {});

}  // namespace weakset
