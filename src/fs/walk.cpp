#include "fs/walk.hpp"

#include <deque>

#include "core/repo_view.hpp"

namespace weakset {

Directory DistFileSystem::make_subdir(const Directory& parent,
                                      NodeId dir_node, NodeId entry_home,
                                      const std::string& name) {
  const Directory child{repo_.create_collection({dir_node}), dir_node};
  const ObjectRef entry =
      repo_.create_object(entry_home, Entry::subdir(name, child).encode());
  repo_.seed_member(parent.id(), entry);
  return child;
}

namespace {

/// One pending directory in the depth-first traversal.
class Pending {
 public:
  Pending(std::string path, Directory dir)
      : path_(std::move(path)), dir_(dir) {}
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] Directory dir() const noexcept { return dir_; }

 private:
  std::string path_;
  Directory dir_;
};

}  // namespace

Task<WalkResult> walk(RepositoryClient& client, Directory root,
                      FileFilter filter, DynSetOptions options) {
  WalkResult result;
  std::deque<Pending> pending;
  pending.emplace_back("", root);

  while (!pending.empty()) {
    const Pending current = pending.front();
    pending.pop_front();

    RepoSetView view{client, current.dir().id()};
    auto set = DynamicSet::open(view, options);
    bool completed = false;
    for (;;) {
      Step step = co_await set->iterate();
      if (step.is_finished()) {
        completed = true;
        break;
      }
      if (step.is_failure()) break;  // partial: skip what never arrived
      const Entry entry = Entry::decode(step.value().data());
      const std::string path = current.path().empty()
                                   ? entry.name()
                                   : current.path() + "/" + entry.name();
      if (entry.is_subdir()) {
        pending.emplace_back(path, entry.dir());
      } else if (!filter || filter(FileInfo{entry.name(), entry.contents()})) {
        result.add_file(FoundFile{path, step.ref(), entry.contents()});
      }
    }
    set->close();
    result.note_directory(completed);
  }
  co_return result;
}

}  // namespace weakset
