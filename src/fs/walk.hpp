#pragma once

// walk: recursive traversal of a directory tree over dynamic sets.
//
// A wide-area `find`: every directory is iterated optimistically (partial
// results under failure), subdirectory entries are followed depth-first,
// and an unreachable subtree is *skipped and counted* instead of sinking
// the whole command — the weak-set answer to "because of failures some
// files may no longer be accessible and so non-termination is possible"
// (section 1.1).

#include <functional>
#include <string>
#include <vector>

#include "dynset/dynamic_set.hpp"
#include "fs/entry.hpp"
#include "store/client.hpp"

namespace weakset {

/// Client-side file filter for walk(). (PredicateSpec from the query module
/// adapts trivially: `[p](const FileInfo& f) { return p.matches(f); }`.)
using FileFilter = std::function<bool(const FileInfo&)>;

/// One file found by walk(): its /-joined path and its object ref.
class FoundFile {
 public:
  FoundFile(std::string path, ObjectRef ref, std::string contents)
      : path_(std::move(path)), ref_(ref), contents_(std::move(contents)) {}

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] ObjectRef ref() const noexcept { return ref_; }
  [[nodiscard]] const std::string& contents() const noexcept {
    return contents_;
  }

 private:
  std::string path_;
  ObjectRef ref_;
  std::string contents_;
};

/// Everything one walk observed.
class WalkResult {
 public:
  [[nodiscard]] const std::vector<FoundFile>& files() const noexcept {
    return files_;
  }
  /// Directories whose iteration ended incomplete (unreachable members or
  /// unreadable membership): their contents are partially or fully missing.
  [[nodiscard]] std::size_t incomplete_directories() const noexcept {
    return incomplete_directories_;
  }
  /// True iff every directory iterated to completion.
  [[nodiscard]] bool complete() const noexcept {
    return incomplete_directories_ == 0;
  }
  [[nodiscard]] std::size_t directories_visited() const noexcept {
    return directories_visited_;
  }

  void add_file(FoundFile file) { files_.push_back(std::move(file)); }
  void note_directory(bool completed) {
    ++directories_visited_;
    if (!completed) ++incomplete_directories_;
  }

 private:
  std::vector<FoundFile> files_;
  std::size_t directories_visited_ = 0;
  std::size_t incomplete_directories_ = 0;
};

/// Walks the tree rooted at `root`, matching files against `filter`
/// (nullptr lists everything). Each directory is drained through a
/// DynamicSet with `options`; failures skip, never abort.
Task<WalkResult> walk(RepositoryClient& client, Directory root,
                      FileFilter filter = nullptr,
                      DynSetOptions options = {});

}  // namespace weakset
