#pragma once

// DistFileSystem: a wide-area file system over the object repository.
//
// The paper's target environment (section 1.1): "a wide-area file system on
// a network of (possibly mobile) workstations ... In a distributed file
// system, files and subdirectories in the same directory may reside on nodes
// different from each other and/or from the directory itself."
//
// A directory is a collection (optionally fragmented/replicated); a file is
// an object on some home node, member of its directory. The pieces that make
// the paper's ls scenario real:
//   - the directory object can be reachable while some files are not
//   - files can live far away (latency) or behind a partition (failure)

#include <string>
#include <vector>

#include "fs/file.hpp"
#include "store/repository.hpp"

namespace weakset {

/// A directory: the collection id plus where it lives.
class Directory {
 public:
  Directory() = default;
  Directory(CollectionId id, NodeId home) : id_(id), home_(home) {}

  [[nodiscard]] CollectionId id() const noexcept { return id_; }
  [[nodiscard]] NodeId home() const noexcept { return home_; }

 private:
  CollectionId id_;
  NodeId home_;
};

class DistFileSystem {
 public:
  explicit DistFileSystem(Repository& repo) : repo_(repo) {}
  DistFileSystem(const DistFileSystem&) = delete;
  DistFileSystem& operator=(const DistFileSystem&) = delete;

  /// Creates a directory homed (single fragment) on `node`.
  Directory mkdir(NodeId node) {
    return Directory{repo_.create_collection({node}), node};
  }

  /// Creates a directory fragmented across `nodes`.
  Directory mkdir_fragmented(const std::vector<NodeId>& nodes) {
    return Directory{repo_.create_collection(nodes), nodes.front()};
  }

  /// Setup-time: creates a file on `home` and links it into `dir`.
  ObjectRef create_file(const Directory& dir, NodeId home, std::string name,
                        std::string contents) {
    const ObjectRef ref = repo_.create_object(
        home, FileInfo{std::move(name), std::move(contents)}.encode());
    repo_.seed_member(dir.id(), ref);
    return ref;
  }

  /// Setup-time: creates a file object without linking it anywhere (it can
  /// be linked later through a client, modelling concurrent creation).
  ObjectRef create_unlinked_file(NodeId home, std::string name,
                                 std::string contents) {
    return repo_.create_object(
        home, FileInfo{std::move(name), std::move(contents)}.encode());
  }

  /// Setup-time: creates a subdirectory of `parent` — a fresh collection
  /// homed on `dir_node`, linked into the parent through an entry object
  /// stored on `entry_home` (which may be a third node, per section 1.1).
  /// Defined in entry-aware callers via make_subdir (see walk.hpp); declared
  /// here so the file system owns all namespace mutations.
  Directory make_subdir(const Directory& parent, NodeId dir_node,
                        NodeId entry_home, const std::string& name);

  [[nodiscard]] Repository& repo() noexcept { return repo_; }

 private:
  Repository& repo_;
};

}  // namespace weakset
