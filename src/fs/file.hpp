#pragma once

// FileInfo: the logical content of a file object — a name plus contents —
// with a trivial serialisation into the object store's payload string.
//
// The paper's examples are all files-with-attributes: ".face files",
// card-catalogue entries, restaurant menus. Commands like ls need the name,
// queries need the contents; both arrive by fetching the object.

#include <cassert>
#include <string>
#include <string_view>
#include <utility>

namespace weakset {

class FileInfo {
 public:
  FileInfo() = default;
  FileInfo(std::string name, std::string contents)
      : name_(std::move(name)), contents_(std::move(contents)) {
    assert(name_.find('\n') == std::string::npos && "file names are one line");
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& contents() const noexcept {
    return contents_;
  }

  /// Payload encoding: "<name>\n<contents>".
  [[nodiscard]] std::string encode() const { return name_ + "\n" + contents_; }

  /// Inverse of encode(). A payload without a newline decodes as a nameless
  /// file whose contents are the whole payload.
  static FileInfo decode(std::string_view payload) {
    const auto newline = payload.find('\n');
    if (newline == std::string_view::npos) {
      return FileInfo{"", std::string{payload}};
    }
    return FileInfo{std::string{payload.substr(0, newline)},
                    std::string{payload.substr(newline + 1)}};
  }

  friend bool operator==(const FileInfo&, const FileInfo&) = default;

 private:
  std::string name_;
  std::string contents_;
};

}  // namespace weakset
