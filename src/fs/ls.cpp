#include "fs/ls.hpp"

#include <algorithm>

#include "core/repo_view.hpp"

namespace weakset {

Task<LsResult> ls_strict(RepositoryClient& client, Directory dir) {
  LsResult result;
  Simulator& sim = client.repo().sim();

  Result<std::vector<ObjectRef>> members =
      co_await client.read_all(dir.id());
  if (!members) {
    result.set_failure(std::move(members).error());
    co_return result;
  }

  // Every file must be fetched before anything is reported.
  std::vector<std::string> names;
  for (const ObjectRef ref : members.value()) {
    Result<VersionedValue> value = co_await client.fetch(ref);
    if (!value) {
      result.set_failure(std::move(value).error());
      co_return result;  // one inaccessible file sinks the whole command
    }
    names.push_back(FileInfo::decode(value.value().data()).name());
  }
  std::sort(names.begin(), names.end());
  const SimTime done = sim.now();
  for (std::string& name : names) result.add(std::move(name), done);
  result.set_complete();
  co_return result;
}

Task<LsResult> ls_dynamic(RepositoryClient& client, Directory dir,
                          DynSetOptions options) {
  LsResult result;
  Simulator& sim = client.repo().sim();
  RepoSetView view{client, dir.id()};
  auto set = DynamicSet::open(view, options);
  for (;;) {
    Step step = co_await set->iterate();
    if (step.is_yield()) {
      result.add(FileInfo::decode(step.value().data()).name(), sim.now());
      continue;
    }
    if (step.is_finished()) {
      result.set_complete();
    } else {
      result.set_failure(step.failure());
    }
    break;
  }
  set->close();
  co_return result;
}

}  // namespace weakset
