#pragma once

// Entry: a typed directory entry — a plain file or a subdirectory pointer.
//
// The paper's file-system context (section 1.1): "files and subdirectories
// in the same directory may reside on nodes different from each other
// and/or from the directory itself." A subdirectory entry is an object like
// any other (it must be fetched to be traversed, its home can be
// unreachable while the parent is fine) whose payload names the child
// collection and its home node.
//
// Wire format stays FileInfo-compatible: a subdirectory's "contents" carry a
// control-prefixed pointer, so ls and the scan service keep working
// unmodified on mixed directories.

#include <cassert>
#include <charconv>
#include <string>

#include "fs/dist_fs.hpp"
#include "fs/file.hpp"

namespace weakset {

class Entry {
 public:
  enum class Kind : std::uint8_t { kFile, kSubdir };

  static Entry file(std::string name, std::string contents) {
    Entry entry;
    entry.kind_ = Kind::kFile;
    entry.name_ = std::move(name);
    entry.contents_ = std::move(contents);
    return entry;
  }

  static Entry subdir(std::string name, Directory dir) {
    Entry entry;
    entry.kind_ = Kind::kSubdir;
    entry.name_ = std::move(name);
    entry.dir_ = dir;
    return entry;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_subdir() const noexcept {
    return kind_ == Kind::kSubdir;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& contents() const {
    assert(kind_ == Kind::kFile);
    return contents_;
  }
  [[nodiscard]] Directory dir() const {
    assert(kind_ == Kind::kSubdir);
    return dir_;
  }

  /// FileInfo-compatible payload encoding.
  [[nodiscard]] std::string encode() const {
    if (kind_ == Kind::kFile) return FileInfo{name_, contents_}.encode();
    return FileInfo{name_, std::string(kDirMarker) + ":" +
                               std::to_string(dir_.id().raw()) + ":" +
                               std::to_string(dir_.home().raw())}
        .encode();
  }

  /// Inverse of encode(); plain FileInfo payloads decode as files.
  static Entry decode(std::string_view payload) {
    const FileInfo info = FileInfo::decode(payload);
    const std::string& body = info.contents();
    if (!body.starts_with(kDirMarker)) {
      return file(info.name(), body);
    }
    // "\x01dir:<collection>:<home>"
    const std::size_t first_colon = body.find(':');
    const std::size_t second_colon = body.find(':', first_colon + 1);
    assert(first_colon != std::string::npos &&
           second_colon != std::string::npos);
    std::uint64_t collection = 0;
    std::uint64_t home = 0;
    std::from_chars(body.data() + first_colon + 1,
                    body.data() + second_colon, collection);
    std::from_chars(body.data() + second_colon + 1,
                    body.data() + body.size(), home);
    return subdir(info.name(),
                  Directory{CollectionId{collection}, NodeId{home}});
  }

 private:
  Entry() = default;

  static constexpr std::string_view kDirMarker = "\x01dir";

  Kind kind_ = Kind::kFile;
  std::string name_;
  std::string contents_;
  Directory dir_;
};

}  // namespace weakset
