#pragma once

// HoardingSetView: disconnected operation for mobile clients.
//
// The paper's target environment includes "(possibly mobile) workstations"
// where "disconnecting a mobile client from the network while traveling is
// an induced failure, yet consistency of data may be sacrificed to gain
// high performance and high availability" (section 1.1). Hoarding is the
// Coda-style answer: while connected, hoard() captures the membership and
// every payload; while disconnected, membership reads and fetches are
// served entirely from the hoard, so iterators complete offline.
//
// The price is measurable inconsistency: the hoarded membership is frozen
// at hoard time, so mutations during the disconnection are invisible —
// offline runs may yield removed members (ghosts) and miss additions. The
// spec layer quantifies exactly that (tests/hoard_test.cpp).

#include <optional>
#include <vector>

#include "core/set_view.hpp"
#include "store/cache.hpp"

namespace weakset {

struct HoardStats {
  std::uint64_t stale_membership_serves = 0;  ///< offline membership reads
  std::uint64_t hoards = 0;                   ///< completed hoard() calls
};

class HoardingSetView final : public SetView {
 public:
  explicit HoardingSetView(SetView& inner, CacheOptions cache_options = {})
      : inner_(inner), sim_(inner.sim()), cache_(cache_options) {}

  /// While connected: reads the membership and fetches every member into
  /// the hoard. Fails if the membership read fails; unreachable members are
  /// skipped (they simply won't be available offline).
  Task<Result<void>> hoard() {
    Result<std::vector<ObjectRef>> members = co_await inner_.read_members();
    if (!members) co_return std::move(members).error();
    for (const ObjectRef ref : members.value()) {
      if (cache_.contains(ref, sim_.now())) continue;
      Result<VersionedValue> value = co_await inner_.fetch(ref);
      if (value) cache_.put(ref, std::move(value).value(), sim_.now());
    }
    hoarded_membership_ = std::move(members).value();
    ++stats_.hoards;
    co_return Ok();
  }

  [[nodiscard]] bool has_hoard() const noexcept {
    return hoarded_membership_.has_value();
  }
  [[nodiscard]] const HoardStats& stats() const noexcept { return stats_; }
  [[nodiscard]] ObjectCache& cache() noexcept { return cache_; }

  // -- SetView ---------------------------------------------------------------

  /// Live read while connected; the hoarded membership when the live read
  /// fails (the disconnection).
  Task<Result<std::vector<ObjectRef>>> read_members() override {
    Result<std::vector<ObjectRef>> live = co_await inner_.read_members();
    if (live) {
      served_from_hoard_ = false;
      co_return live;
    }
    if (hoarded_membership_) {
      ++stats_.stale_membership_serves;
      served_from_hoard_ = true;
      co_return *hoarded_membership_;
    }
    served_from_hoard_ = false;
    co_return live;  // no hoard to fall back on: propagate the failure
  }

  [[nodiscard]] MembershipReadMode last_read_mode() const override {
    // A hoard serve ships the (locally) full hoarded membership; otherwise
    // report whatever the live inner read did.
    if (served_from_hoard_) return MembershipReadMode{1, 0};
    return inner_.last_read_mode();
  }

  /// Snapshots need the live system; disconnected snapshots would be a
  /// contradiction in terms.
  Task<Result<std::vector<ObjectRef>>> snapshot_atomic(
      std::function<void()> on_cut) override {
    return inner_.snapshot_atomic(std::move(on_cut));
  }
  Task<Result<void>> freeze() override { return inner_.freeze(); }
  Task<void> unfreeze() override { return inner_.unfreeze(); }
  Task<Result<void>> pin_grow_only() override {
    return inner_.pin_grow_only();
  }
  Task<void> unpin_grow_only() override { return inner_.unpin_grow_only(); }

  [[nodiscard]] bool is_reachable(ObjectRef ref) const override {
    return cache_.contains(ref, sim_.now()) || inner_.is_reachable(ref);
  }
  [[nodiscard]] std::optional<Duration> distance(
      ObjectRef ref) const override {
    if (cache_.contains(ref, sim_.now())) return Duration::zero();
    return inner_.distance(ref);
  }

  Task<Result<VersionedValue>> fetch(ObjectRef ref) override {
    if (auto hit = cache_.get(ref, sim_.now())) co_return std::move(*hit);
    Result<VersionedValue> value = co_await inner_.fetch(ref);
    if (value) cache_.put(ref, value.value(), sim_.now());
    co_return value;
  }

  Task<std::vector<Result<VersionedValue>>> fetch_many(
      std::vector<ObjectRef> refs) override {
    // Hoard hits serve locally (they are the point of hoarding); misses go
    // out batched while connected, and every result joins the hoard.
    std::vector<std::optional<Result<VersionedValue>>> slots(refs.size());
    std::vector<ObjectRef> misses;
    std::vector<std::size_t> miss_index;
    for (std::size_t i = 0; i < refs.size(); ++i) {
      if (auto hit = cache_.get(refs[i], sim_.now())) {
        slots[i] = std::move(*hit);
      } else {
        misses.push_back(refs[i]);
        miss_index.push_back(i);
      }
    }
    if (!misses.empty()) {
      auto fetched = co_await inner_.fetch_many(std::move(misses));
      for (std::size_t j = 0; j < fetched.size(); ++j) {
        if (fetched[j]) {
          cache_.put(refs[miss_index[j]], fetched[j].value(), sim_.now());
        }
        slots[miss_index[j]] = std::move(fetched[j]);
      }
    }
    std::vector<Result<VersionedValue>> out;
    out.reserve(refs.size());
    for (auto& slot : slots) out.push_back(std::move(*slot));
    co_return out;
  }

  [[nodiscard]] Simulator& sim() override { return sim_; }

 private:
  SetView& inner_;
  Simulator& sim_;
  mutable ObjectCache cache_;
  std::optional<std::vector<ObjectRef>> hoarded_membership_;
  HoardStats stats_;
  bool served_from_hoard_ = false;
};

}  // namespace weakset
