#include "core/mobile.hpp"

#include <algorithm>
#include <unordered_set>

namespace weakset {

std::vector<ObjectRef> MobileSetClient::overlay(
    std::vector<ObjectRef> base) const {
  if (log_.empty()) return base;
  // Replay the queue over the base read, in order: later ops win.
  std::vector<ObjectRef> members = std::move(base);
  std::unordered_set<ObjectRef> present{members.begin(), members.end()};
  for (const PendingOp& op : log_) {
    if (op.is_add()) {
      if (present.insert(op.ref()).second) members.push_back(op.ref());
    } else if (present.erase(op.ref()) > 0) {
      std::erase(members, op.ref());
    }
  }
  return members;
}

Task<Result<bool>> MobileSetClient::mutate(ObjectRef ref, bool is_add) {
  // Connected path: a normal membership mutation at the responsible primary.
  Result<bool> live{false};
  if (is_add) {
    live = co_await client_.add(collection_, ref);
  } else {
    live = co_await client_.remove(collection_, ref);
  }
  if (live) co_return live;

  // Disconnected: optimistic local update + queue for reintegration.
  log_.emplace_back(is_add, ref, sim().now());
  co_return true;  // the local view reflects it; reintegration reconciles
}

Task<ReintegrationReport> MobileSetClient::reintegrate() {
  ReintegrationReport report;
  std::deque<PendingOp> retry;
  while (!log_.empty()) {
    const PendingOp op = log_.front();
    log_.pop_front();
    Result<bool> outcome{false};
    if (op.is_add()) {
      outcome = co_await client_.add(collection_, op.ref());
    } else {
      outcome = co_await client_.remove(collection_, op.ref());
    }
    if (!outcome) {
      report.note_failed();
      retry.push_back(op);  // still unreachable: keep for next time
      continue;
    }
    if (outcome.value()) {
      report.note_applied();
    } else {
      // Membership was already in the desired state: a benign merge with
      // someone else's identical mutation.
      report.note_redundant();
    }
  }
  log_ = std::move(retry);
  co_return report;
}

}  // namespace weakset
