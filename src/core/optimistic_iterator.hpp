#pragma once

// Figure 6: growing and shrinking set, optimistic failure handling — the
// weakest point in the design space and the semantics of *dynamic sets*,
// the design the authors chose to implement (section 5).
//
// "There are no restrictions on mutation, there is only a weak guarantee
// about what is yielded, and it takes an optimistic approach to consistency
// ... This specification takes an optimistic approach since it may never
// return if a failure is detected" — the invocation blocks (suspend/retry)
// "with the expectation that in a later invocation inaccessible objects will
// become accessible again (because the failure has been repaired by that
// time)."
//
// RetryPolicy::forever() reproduces the blocking literally; a bounded policy
// ends the observation window (reported kExhausted, recorded as `blocked`).

#include "core/iterator.hpp"

namespace weakset {

class OptimisticIterator final : public ElementsIterator {
 public:
  OptimisticIterator(SetView& view, IteratorOptions options)
      : ElementsIterator(view, std::move(options)) {}

  [[nodiscard]] Semantics semantics() const noexcept override {
    return Semantics::kFig6Optimistic;
  }

 protected:
  Task<Step> step() override;
};

}  // namespace weakset
