#pragma once

// UnionSetView: several weak sets federated into one.
//
// The paper's queries naturally span repositories — "the on-line menus of
// all Chinese restaurants" lives on many independent hosts, a literature
// search spans several library systems. A union view presents the member
// union of its parts as one weak set: membership reads merge the parts
// (deduplicated), and the weak semantics compose — a part that cannot be
// read right now simply contributes nothing in best-effort mode, exactly
// like an unreachable archive in a QuerySetView.
//
// Freezing or atomically snapshotting a federation would need a cross-
// administrative-domain lock, which is precisely what wide-area systems
// don't have (section 1): freeze() fails, and snapshot_atomic() degrades to
// a require-all read (consistent only absent concurrent mutation).

#include <cassert>
#include <unordered_set>
#include <vector>

#include "core/set_view.hpp"

namespace weakset {

enum class UnionMode {
  kRequireAll,   ///< every part must answer, else the read fails
  kBestEffort,   ///< unreachable parts contribute nothing
};

class UnionSetView final : public SetView {
 public:
  /// The parts must outlive the union and share one simulator.
  UnionSetView(std::vector<SetView*> parts,
               UnionMode mode = UnionMode::kBestEffort)
      : parts_(std::move(parts)), mode_(mode) {
    assert(!parts_.empty());
  }

  Task<Result<std::vector<ObjectRef>>> read_members() override {
    return read(mode_);
  }

  [[nodiscard]] MembershipReadMode last_read_mode() const override {
    return last_read_mode_;
  }

  Task<Result<std::vector<ObjectRef>>> snapshot_atomic(
      std::function<void()> on_cut) override {
    // No cross-domain atomicity: a require-all read, cut marked at the end.
    Result<std::vector<ObjectRef>> members =
        co_await read(UnionMode::kRequireAll);
    if (members && on_cut) on_cut();
    co_return members;
  }

  Task<Result<void>> freeze() override {
    co_return Failure{FailureKind::kNotFound,
                      "a federation spans administrative domains and cannot "
                      "be frozen"};
  }
  Task<void> unfreeze() override { co_return; }
  Task<Result<void>> pin_grow_only() override {
    co_return Failure{FailureKind::kNotFound,
                      "a federation cannot be pinned"};
  }
  Task<void> unpin_grow_only() override { co_return; }

  [[nodiscard]] bool is_reachable(ObjectRef ref) const override {
    for (const SetView* part : parts_) {
      if (part->is_reachable(ref)) return true;
    }
    return false;
  }

  [[nodiscard]] std::optional<Duration> distance(
      ObjectRef ref) const override {
    std::optional<Duration> best;
    for (const SetView* part : parts_) {
      const auto d = part->distance(ref);
      if (d && (!best || *d < *best)) best = d;
    }
    return best;
  }

  Task<Result<VersionedValue>> fetch(ObjectRef ref) override {
    // Route through the first part that can reach the object; fall back to
    // trying the rest (a part may succeed where another's cache missed).
    Result<VersionedValue> last{Failure{FailureKind::kUnreachable,
                                        "no federation part reaches it"}};
    for (SetView* part : parts_) {
      if (!part->is_reachable(ref)) continue;
      last = co_await part->fetch(ref);
      if (last) co_return last;
    }
    co_return last;
  }

  Task<std::vector<Result<VersionedValue>>> fetch_many(
      std::vector<ObjectRef> refs) override {
    // Mirror fetch(): each ref goes to the first part that can reach it and
    // falls through to later parts on failure — but grouped, so each part
    // sees one batched call per round instead of a ref at a time.
    std::vector<std::optional<Result<VersionedValue>>> slots(refs.size());
    for (SetView* part : parts_) {
      std::vector<ObjectRef> sub;
      std::vector<std::size_t> sub_index;
      for (std::size_t i = 0; i < refs.size(); ++i) {
        const bool resolved = slots[i].has_value() && slots[i]->has_value();
        if (!resolved && part->is_reachable(refs[i])) {
          sub.push_back(refs[i]);
          sub_index.push_back(i);
        }
      }
      if (sub.empty()) continue;
      auto fetched = co_await part->fetch_many(std::move(sub));
      for (std::size_t j = 0; j < fetched.size(); ++j) {
        // A success wins; a failure is kept only until a later part answers.
        if (fetched[j] || !slots[sub_index[j]].has_value()) {
          slots[sub_index[j]] = std::move(fetched[j]);
        }
      }
    }
    std::vector<Result<VersionedValue>> out;
    out.reserve(refs.size());
    for (auto& slot : slots) {
      if (slot.has_value()) {
        out.push_back(std::move(*slot));
      } else {
        out.push_back(Failure{FailureKind::kUnreachable,
                              "no federation part reaches it"});
      }
    }
    co_return out;
  }

  [[nodiscard]] Simulator& sim() override { return parts_.front()->sim(); }

  /// Parts skipped during the last best-effort read.
  [[nodiscard]] std::size_t last_skipped() const noexcept {
    return last_skipped_;
  }

 private:
  Task<Result<std::vector<ObjectRef>>> read(UnionMode mode) {
    std::vector<ObjectRef> members;
    std::unordered_set<ObjectRef> seen;
    last_skipped_ = 0;
    last_read_mode_ = MembershipReadMode{};
    std::optional<Failure> first_failure;
    for (SetView* part : parts_) {
      Result<std::vector<ObjectRef>> part_read =
          co_await part->read_members();
      if (!part_read) {
        if (!first_failure) first_failure = std::move(part_read).error();
        ++last_skipped_;
        continue;
      }
      const MembershipReadMode part_mode = part->last_read_mode();
      last_read_mode_.full += part_mode.full;
      last_read_mode_.delta += part_mode.delta;
      for (const ObjectRef ref : part_read.value()) {
        if (seen.insert(ref).second) members.push_back(ref);
      }
    }
    if (mode == UnionMode::kRequireAll && first_failure) {
      co_return std::move(*first_failure);
    }
    co_return members;
  }

  std::vector<SetView*> parts_;
  UnionMode mode_;
  std::size_t last_skipped_ = 0;
  MembershipReadMode last_read_mode_;
};

}  // namespace weakset
