#pragma once

// MobileSetClient: full disconnected operation for a weak set — reads from
// the hoard AND writes queued for reintegration.
//
// The paper's environment is "a network of (possibly mobile) workstations"
// where "disconnecting a mobile client from the network while traveling is
// an induced failure, yet consistency of data may be sacrificed to gain
// high performance and high availability" (section 1.1). Sacrificing
// consistency for writes means Coda-style optimistic update: while
// disconnected, add/remove apply to a local overlay (the client sees its
// own writes) and are queued; on reconnection, reintegrate() replays the
// log against the fragment primaries.
//
// Objects created while disconnected simply live on the mobile node's own
// store server — the repository model needs nothing special for them; only
// the membership link waits for reintegration.
//
// Reintegration outcomes per queued op:
//   applied     the primary accepted it and membership changed
//   redundant   the primary was already in the desired state (someone else
//               did the same thing meanwhile) — the set-semantics analogue
//               of a benign merge
//   failed      the primary is still unreachable; the op stays queued

#include <deque>
#include <vector>

#include "core/hoard_view.hpp"
#include "core/repo_view.hpp"
#include "store/client.hpp"

namespace weakset {

/// Outcome counts of one reintegrate() call.
class ReintegrationReport {
 public:
  ReintegrationReport() = default;

  [[nodiscard]] std::size_t applied() const noexcept { return applied_; }
  [[nodiscard]] std::size_t redundant() const noexcept { return redundant_; }
  [[nodiscard]] std::size_t failed() const noexcept { return failed_; }
  [[nodiscard]] bool clean() const noexcept { return failed_ == 0; }

  void note_applied() { ++applied_; }
  void note_redundant() { ++redundant_; }
  void note_failed() { ++failed_; }

 private:
  std::size_t applied_ = 0;
  std::size_t redundant_ = 0;
  std::size_t failed_ = 0;
};

class MobileSetClient final : public SetView {
 public:
  MobileSetClient(RepositoryClient& client, CollectionId collection,
                  CacheOptions cache_options = {})
      : client_(client),
        collection_(collection),
        inner_(client, collection),
        hoard_(inner_, cache_options) {}

  /// While connected: capture membership and payloads (see HoardingSetView).
  Task<Result<void>> hoard() { return hoard_.hoard(); }

  /// Adds `ref` to the set. Connected: a normal membership RPC.
  /// Disconnected (the RPC fails): applied to the local overlay and queued.
  Task<Result<bool>> add(ObjectRef ref) { return mutate(ref, true); }

  /// Removes `ref` from the set, with the same connected/disconnected split.
  Task<Result<bool>> remove(ObjectRef ref) { return mutate(ref, false); }

  /// Replays the queued log against the primaries. Ops that still cannot be
  /// delivered stay queued for the next attempt.
  Task<ReintegrationReport> reintegrate();

  [[nodiscard]] std::size_t pending_ops() const noexcept {
    return log_.size();
  }
  [[nodiscard]] const HoardStats& hoard_stats() const noexcept {
    return hoard_.stats();
  }

  // -- SetView (reads through hoard + overlay) -------------------------------

  Task<Result<std::vector<ObjectRef>>> read_members() override {
    Result<std::vector<ObjectRef>> base = co_await hoard_.read_members();
    if (!base) co_return base;
    co_return overlay(std::move(base).value());
  }

  Task<Result<std::vector<ObjectRef>>> snapshot_atomic(
      std::function<void()> on_cut) override {
    return hoard_.snapshot_atomic(std::move(on_cut));
  }
  Task<Result<void>> freeze() override { return hoard_.freeze(); }
  Task<void> unfreeze() override { return hoard_.unfreeze(); }
  Task<Result<void>> pin_grow_only() override {
    return hoard_.pin_grow_only();
  }
  Task<void> unpin_grow_only() override { return hoard_.unpin_grow_only(); }

  [[nodiscard]] bool is_reachable(ObjectRef ref) const override {
    return hoard_.is_reachable(ref);
  }
  [[nodiscard]] std::optional<Duration> distance(
      ObjectRef ref) const override {
    return hoard_.distance(ref);
  }
  Task<Result<VersionedValue>> fetch(ObjectRef ref) override {
    return hoard_.fetch(ref);
  }
  [[nodiscard]] Simulator& sim() override { return hoard_.sim(); }

 private:
  class PendingOp {
   public:
    PendingOp(bool is_add, ObjectRef ref, SimTime queued_at)
        : is_add_(is_add), ref_(ref), queued_at_(queued_at) {}
    [[nodiscard]] bool is_add() const noexcept { return is_add_; }
    [[nodiscard]] ObjectRef ref() const noexcept { return ref_; }
    [[nodiscard]] SimTime queued_at() const noexcept { return queued_at_; }

   private:
    bool is_add_;
    ObjectRef ref_;
    SimTime queued_at_;
  };

  Task<Result<bool>> mutate(ObjectRef ref, bool is_add);

  /// Applies the queued overlay to a base membership read.
  [[nodiscard]] std::vector<ObjectRef> overlay(
      std::vector<ObjectRef> base) const;

  RepositoryClient& client_;
  CollectionId collection_;
  RepoSetView inner_;
  HoardingSetView hoard_;
  std::deque<PendingOp> log_;
};

}  // namespace weakset
