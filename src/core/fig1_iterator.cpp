#include "core/fig1_iterator.hpp"

namespace weakset {

Task<Step> Fig1Iterator::step() {
  if (!loaded_) {
    Result<std::vector<ObjectRef>> members = co_await read_members_tracked();
    if (!members) co_return Step::failed(std::move(members).error());
    s_first_ = std::move(members).value();
    loaded_ = true;
    mark_first_state();  // s_first acquired here
  }
  std::vector<ObjectRef> candidates = unyielded(s_first_);
  if (candidates.empty()) co_return Step::finished();
  // Failure-free model: fetch the first candidate without consulting the
  // failure detector. The prefetch window pipelines the fetches of the
  // candidates behind it.
  prefetch_sync(candidates);
  const ObjectRef ref = candidates.front();
  Result<VersionedValue> value = co_await fetch_element(ref);
  if (!value) co_return Step::failed(std::move(value).error());
  co_return Step::yielded(ref, std::move(value).value());
}

}  // namespace weakset
