#pragma once

// Figure 4: mutable set with loss of mutations (snapshot semantics).
//
// "The iterator will yield only those elements of s as it appears the first
// time the iterator is called. ... it still assumes that the set can be
// obtained in one atomic action (to get a snapshot of s in the first-state),
// and distributed atomic actions are extremely expensive in practice."
//
// The snapshot is taken with SetView::snapshot_atomic() — over the
// repository this is a freeze-read-unfreeze across all fragments, so the
// cost claim is measurable (bench E3). Iteration then proceeds exactly as in
// Figure 3, against the frozen first-state value.

#include "core/iterator.hpp"

namespace weakset {

class SnapshotIterator final : public ElementsIterator {
 public:
  SnapshotIterator(SetView& view, IteratorOptions options)
      : ElementsIterator(view, std::move(options)) {}

  [[nodiscard]] Semantics semantics() const noexcept override {
    return Semantics::kFig4Snapshot;
  }

 protected:
  Task<Step> step() override;

 private:
  bool loaded_ = false;
  std::vector<ObjectRef> s_first_;
};

}  // namespace weakset
