#include "core/prefetcher.hpp"

#include <cassert>
#include <unordered_set>
#include <utility>

#include "core/iterator.hpp"

namespace weakset {

Prefetcher::Prefetcher(SetView& view, std::size_t window, IteratorStats& stats,
                       obs::MetricsRegistry& metrics)
    : view_(view),
      window_(window),
      low_water_((window + 1) / 2),
      stats_(stats),
      metrics_(metrics) {
  assert(window_ >= 2 && "window 1 is the iterator's serial path");
}

void Prefetcher::sync(const std::vector<ObjectRef>& candidates) {
  if (!slots_.empty()) {
    const std::unordered_set<ObjectRef> current(candidates.begin(),
                                                candidates.end());
    for (auto it = slots_.begin(); it != slots_.end();) {
      if (current.count(it->first) == 0) {
        // The element was removed (or yielded) since its prefetch was issued;
        // discarding the slot is what keeps Figure 6's "never yield an element
        // whose removal was observed" intact under prefetching.
        ++stats_.prefetch_invalidated;
        it = slots_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Hysteresis: refill only once the window has half-drained, so each refill
  // is a real batch rather than one ref per yield.
  if (slots_.size() >= low_water_) return;
  std::vector<ObjectRef> refs;
  std::vector<std::shared_ptr<Slot>> batch;
  for (const ObjectRef ref : candidates) {
    if (slots_.size() >= window_) break;
    if (slots_.count(ref) != 0 || !view_.is_reachable(ref)) continue;
    auto slot = std::make_shared<Slot>(view_.sim());
    slots_.emplace(ref, slot);
    refs.push_back(ref);
    batch.push_back(std::move(slot));
  }
  if (refs.empty()) return;
  ++stats_.prefetch_batches;
  stats_.prefetch_batched_objects += refs.size();
  // Occupancy is sampled right after a refill: how full the pipeline runs in
  // steady state (a full window means fetches hide behind consumption).
  metrics_.record_value("iter.prefetch.window_occupancy",
                        static_cast<std::int64_t>(slots_.size()));
  metrics_.add("iter.prefetch.batches");
  metrics_.add("iter.prefetch.batched_objects", refs.size());
  view_.sim().spawn(batch_worker(&view_, std::move(refs), std::move(batch)));
}

Task<Result<VersionedValue>> Prefetcher::fetch(ObjectRef ref) {
  const auto it = slots_.find(ref);
  if (it == slots_.end()) {
    // Never prefetched (e.g. it was unreachable at sync time): serial fetch.
    ++stats_.prefetch_misses;
    co_return co_await view_.fetch(ref);
  }
  std::shared_ptr<Slot> slot = it->second;
  slots_.erase(it);
  if (slot->cell.is_set()) {
    ++stats_.prefetch_hits;
  } else {
    // In flight: the consumer still pays the residual wait.
    ++stats_.prefetch_misses;
  }
  co_return co_await slot->cell.wait();
}

void Prefetcher::drop(ObjectRef ref) {
  if (slots_.erase(ref) > 0) ++stats_.prefetch_invalidated;
}

Task<void> Prefetcher::quiesce() {
  std::unordered_map<ObjectRef, std::shared_ptr<Slot>> outstanding =
      std::move(slots_);
  slots_.clear();
  for (auto& entry : outstanding) {
    (void)co_await entry.second->cell.wait();
  }
}

Task<void> Prefetcher::batch_worker(SetView* view, std::vector<ObjectRef> refs,
                                    std::vector<std::shared_ptr<Slot>> slots) {
  std::vector<Result<VersionedValue>> results =
      co_await view->fetch_many(std::move(refs));
  assert(results.size() == slots.size() &&
         "fetch_many must answer every ref, in order");
  for (std::size_t i = 0; i < results.size(); ++i) {
    // try_set cannot fail: each slot has exactly one producer. If the
    // iterator dropped the slot meanwhile, this keeps the value alive only
    // until `slots` goes out of scope.
    slots[i]->cell.try_set(std::move(results[i]));
  }
}

}  // namespace weakset
