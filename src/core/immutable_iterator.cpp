#include "core/immutable_iterator.hpp"

namespace weakset {

Task<void> ImmutableIterator::release() {
  if (frozen_) {
    frozen_ = false;
    co_await view().unfreeze();
  }
}

// The freeze is released only here — after the terminal invocation has been
// recorded — so the re-admitted mutators cannot land inside the recorded run
// window.
Task<void> ImmutableIterator::on_terminal() { co_await release(); }

Task<Step> ImmutableIterator::step() {
  if (!loaded_) {
    if (options().enforce_freeze) {
      Result<void> frozen = co_await view().freeze();
      if (!frozen) co_return Step::failed(frozen.error());
      frozen_ = true;
    }
    Result<std::vector<ObjectRef>> members = co_await read_members_tracked();
    if (!members) co_return Step::failed(std::move(members).error());
    s_first_ = std::move(members).value();
    loaded_ = true;
    mark_first_state();  // s_first acquired here
  }

  std::vector<ObjectRef> candidates = unyielded(s_first_);
  if (candidates.empty()) {
    co_return Step::finished();  // yielded = s_first
  }
  std::optional<Step> yielded = co_await try_yield(std::move(candidates));
  if (yielded) co_return std::move(*yielded);

  // Unyielded members of s_first remain, but none is reachable: fail
  // (pessimistic handling; yielded = reachable(s_first) ⊂ s_first).
  co_return Step::failed(
      Failure{FailureKind::kUnreachable,
              "unreachable members of s_first remain"});
}

}  // namespace weakset
