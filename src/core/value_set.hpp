#pragma once

// ValueSet: the paper's Figure 1 *type specification*, implemented literally.
//
//   set = type create, add, remove, size, elements
//   constraint s_i = s_j                       (set is immutable)
//   create = proc () returns (t: set)     ensures t_post = {} ∧ new(t)
//   add    = proc (s, e) returns (t: set) ensures t_post = s_pre ∪ {e} ∧ new(t)
//   remove = proc (e, s) returns (t: set) ensures t_post = s_pre − {e} ∧ new(t)
//   size   = proc (s) returns (i: int)    ensures i = |s_pre|
//   elements = iter (s) yields (e: elem)  one new element per invocation
//
// Every operation returns a NEW set object (the paper's new(t)); existing
// values never change, so the constraint holds by construction. This is the
// local, failure-free end of the design space — the semantics every weak
// variant degrades from. Backed by a shared sorted vector: copies are O(1),
// add/remove O(n), membership O(log n).

#include <algorithm>
#include <cassert>
#include <memory>
#include <optional>
#include <vector>

namespace weakset {

template <typename T>
class ValueSet {
 public:
  /// create: the empty set (a fresh object).
  static ValueSet create() { return ValueSet{std::make_shared<Rep>()}; }

  /// add: a new set whose value is s_pre ∪ {e}; *this is unchanged.
  [[nodiscard]] ValueSet add(const T& element) const {
    const auto it =
        std::lower_bound(rep_->begin(), rep_->end(), element);
    if (it != rep_->end() && *it == element) return *this;  // already present
    auto next = std::make_shared<Rep>();
    next->reserve(rep_->size() + 1);
    next->insert(next->end(), rep_->begin(), it);
    next->push_back(element);
    next->insert(next->end(), it, rep_->cend());
    return ValueSet{std::move(next)};
  }

  /// remove: a new set whose value is s_pre − {e}; *this is unchanged.
  [[nodiscard]] ValueSet remove(const T& element) const {
    const auto it =
        std::lower_bound(rep_->begin(), rep_->end(), element);
    if (it == rep_->end() || *it != element) return *this;  // not present
    auto next = std::make_shared<Rep>();
    next->reserve(rep_->size() - 1);
    next->insert(next->end(), rep_->cbegin(), it);
    next->insert(next->end(), std::next(it), rep_->cend());
    return ValueSet{std::move(next)};
  }

  /// size: |s_pre|.
  [[nodiscard]] std::size_t size() const noexcept { return rep_->size(); }
  [[nodiscard]] bool empty() const noexcept { return rep_->empty(); }

  [[nodiscard]] bool contains(const T& element) const {
    return std::binary_search(rep_->begin(), rep_->end(), element);
  }

  /// Value equality (set extensionality), independent of object identity.
  friend bool operator==(const ValueSet& a, const ValueSet& b) {
    return a.rep_ == b.rep_ || *a.rep_ == *b.rep_;
  }

  /// Object identity: add/remove mint new objects even when the value is
  /// shared structurally (the paper's new(t)).
  [[nodiscard]] bool same_object(const ValueSet& other) const noexcept {
    return rep_ == other.rep_;
  }

  /// The elements iterator of Figure 1 (failure-free, local): each
  /// invocation of next() yields an element not already yielded; nullopt
  /// when all elements of s_first have been yielded. The cursor snapshots
  /// s_first at creation — shared structure makes that free.
  class ElementsCursor {
   public:
    explicit ElementsCursor(const ValueSet& set) : rep_(set.rep_) {}

    /// One invocation: suspends-with-element or returns (nullopt).
    std::optional<T> next() {
      if (index_ >= rep_->size()) return std::nullopt;
      return (*rep_)[index_++];
    }

    /// |yielded| so far.
    [[nodiscard]] std::size_t yielded() const noexcept { return index_; }

   private:
    std::shared_ptr<const std::vector<T>> rep_;
    std::size_t index_ = 0;
  };

  [[nodiscard]] ElementsCursor elements() const {
    return ElementsCursor{*this};
  }

  // Range access (sorted order) for interoperability with std algorithms.
  [[nodiscard]] auto begin() const { return rep_->begin(); }
  [[nodiscard]] auto end() const { return rep_->end(); }

 private:
  using Rep = std::vector<T>;
  explicit ValueSet(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {
    assert(std::is_sorted(rep_->begin(), rep_->end()));
  }
  explicit ValueSet(std::shared_ptr<Rep> rep) : rep_(std::move(rep)) {}

  std::shared_ptr<const Rep> rep_;
};

}  // namespace weakset
