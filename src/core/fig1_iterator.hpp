#pragma once

// Figure 1: immutable set, failures ignored.
//
// "This iterator yields elements in the set one at a time ... each time the
// iterator is invoked an element not already yielded is returned to its
// caller; this process continues until all elements in the original set
// (s_first) have been yielded." Failures are outside this figure's model: if
// the environment injects one anyway, the iterator surfaces it as a failure
// (the specification simply has nothing to say about that run).

#include "core/iterator.hpp"

namespace weakset {

class Fig1Iterator final : public ElementsIterator {
 public:
  Fig1Iterator(SetView& view, IteratorOptions options)
      : ElementsIterator(view, std::move(options)) {}

  [[nodiscard]] Semantics semantics() const noexcept override {
    return Semantics::kFig1Immutable;
  }

 protected:
  Task<Step> step() override;

 private:
  bool loaded_ = false;
  std::vector<ObjectRef> s_first_;
};

}  // namespace weakset
