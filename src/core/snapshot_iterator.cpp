#include "core/snapshot_iterator.hpp"

namespace weakset {

Task<Step> SnapshotIterator::step() {
  if (!loaded_) {
    // The recorder's first-state is pinned at the snapshot's consistent cut,
    // while mutators are still frozen out.
    Result<std::vector<ObjectRef>> snapshot =
        co_await view().snapshot_atomic([this] { mark_first_state(); });
    if (!snapshot) co_return Step::failed(std::move(snapshot).error());
    s_first_ = std::move(snapshot).value();
    loaded_ = true;
  }

  std::vector<ObjectRef> candidates = unyielded(s_first_);
  if (candidates.empty()) co_return Step::finished();

  std::optional<Step> yielded = co_await try_yield(std::move(candidates));
  if (yielded) co_return std::move(*yielded);

  co_return Step::failed(
      Failure{FailureKind::kUnreachable,
              "unreachable members of the snapshot remain"});
}

}  // namespace weakset
