#pragma once

// WeakSet: the public façade of the library — the paper's set type
// (create, add, remove, size, elements) bound to one repository collection
// as observed from one client node.
//
//   WeakSet set = WeakSet::create(repo, client, {server1, server2});
//   co_await set.add(ref);
//   auto it = set.elements(Semantics::kFig6Optimistic);
//   while ((step = co_await it->next()).is_yield()) use(step.ref());
//
// The choice of Semantics picks the point in the paper's design space; all
// five are available over the same set object.

#include <memory>

#include "core/iterator.hpp"
#include "core/repo_view.hpp"
#include "store/client.hpp"
#include "store/repository.hpp"

namespace weakset {

class WeakSet {
 public:
  /// Binds to an existing collection, observed through `client`.
  WeakSet(RepositoryClient& client, CollectionId id)
      : client_(client), id_(id), view_(client, id) {}

  /// Creates a new (possibly fragmented) weak set in the repository — the
  /// paper's `create` operation — and binds to it.
  static WeakSet create(Repository& repo, RepositoryClient& client,
                        const std::vector<NodeId>& fragment_primaries) {
    return WeakSet{client, repo.create_collection(fragment_primaries)};
  }

  /// The paper's `add`: membership takes effect at the responsible fragment
  /// primary. Returns whether membership changed.
  Task<Result<bool>> add(ObjectRef ref) { return client_.add(id_, ref); }

  /// The paper's `remove`.
  Task<Result<bool>> remove(ObjectRef ref) { return client_.remove(id_, ref); }

  /// The paper's `size` (|s_pre|, loose across fragments).
  Task<Result<std::uint64_t>> size() { return client_.total_size(id_); }

  /// The paper's `elements` iterator, at the chosen point of the design
  /// space.
  [[nodiscard]] std::unique_ptr<ElementsIterator> elements(
      Semantics semantics, IteratorOptions options = {}) {
    return make_elements_iterator(view_, semantics, std::move(options));
  }

  [[nodiscard]] CollectionId id() const noexcept { return id_; }
  [[nodiscard]] SetView& view() noexcept { return view_; }
  [[nodiscard]] RepositoryClient& client() noexcept { return client_; }

 private:
  RepositoryClient& client_;
  CollectionId id_;
  RepoSetView view_;
};

}  // namespace weakset
