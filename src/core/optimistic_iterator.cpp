#include "core/optimistic_iterator.hpp"

namespace weakset {

Task<Step> OptimisticIterator::step() {
  const RetryPolicy& retry = options().retry;
  std::size_t attempts = 0;
  for (;;) {
    ++attempts;
    // Read the current visible state (a nearby replica is fine: optimism
    // embraces staleness for availability).
    Result<std::vector<ObjectRef>> members = co_await read_members_tracked();
    if (members) {
      std::vector<ObjectRef> candidates = unyielded(members.value());
      if (candidates.empty()) {
        // Everything visible has been yielded: return.
        co_return Step::finished();
      }
      std::optional<Step> yielded = co_await try_yield(std::move(candidates));
      if (yielded) co_return std::move(*yielded);
    }
    // Progress is blocked (read failed, or known members unreachable).
    // Optimism: wait for the failure to be repaired, then try again —
    // never signal failure.
    if (!retry.is_forever() && attempts >= retry.max_attempts()) {
      co_return Step::failed(
          Failure{FailureKind::kExhausted,
                  "optimistic retry budget exhausted (observation window)"});
    }
    co_await view().sim().delay(retry.interval());
  }
}

}  // namespace weakset
