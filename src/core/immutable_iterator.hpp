#pragma once

// Figure 3: immutable set with failures (pessimistic).
//
// Yields only reachable elements of s_first; when every reachable element
// has been yielded but unreachable members remain, it signals failure
// ("a failure occurs if everything reachable has been yielded and the
// reachable set of elements is a subset of the original set"); when all of
// s_first has been yielded, it returns.
//
// With options().enforce_freeze the iterator actively enforces the
// immutability constraint by holding the distributed freeze lock for the
// whole run — the locking cost discussed in section 3.1.

#include "core/iterator.hpp"

namespace weakset {

class ImmutableIterator final : public ElementsIterator {
 public:
  ImmutableIterator(SetView& view, IteratorOptions options)
      : ElementsIterator(view, std::move(options)) {}

  [[nodiscard]] Semantics semantics() const noexcept override {
    return Semantics::kFig3ImmutableFailAware;
  }

 protected:
  Task<Step> step() override;
  Task<void> on_terminal() override;

 private:
  /// Releases the freeze lock if held (terminal transitions only).
  Task<void> release();

  bool loaded_ = false;
  bool frozen_ = false;
  std::vector<ObjectRef> s_first_;
};

}  // namespace weakset
