#pragma once

// CachingSetView: a SetView decorator that adds a client-side object cache.
//
// Fetches hit the cache first (no RPC on a fresh hit); misses fall through
// to the inner view and fill the cache. Crucially, a cached object counts
// as *reachable* even when its home is partitioned away — the client holds
// a copy, so the object is accessible in the paper's sense. This formalises
// the availability nuance of the dynamic-set prefetch buffer: iterators
// over a caching view keep yielding cached members through failures.
//
// The price is currency: a hit may serve an old version (bounded by the
// cache TTL). That trade is exactly the paper's "users are usually willing
// to tolerate some inconsistency for a gain in performance".

#include "core/set_view.hpp"
#include "store/cache.hpp"

namespace weakset {

class CachingSetView final : public SetView {
 public:
  CachingSetView(SetView& inner, CacheOptions options = {})
      : inner_(inner), sim_(inner.sim()), cache_(options) {}

  Task<Result<std::vector<ObjectRef>>> read_members() override {
    return inner_.read_members();
  }
  [[nodiscard]] MembershipReadMode last_read_mode() const override {
    return inner_.last_read_mode();
  }
  Task<Result<std::vector<ObjectRef>>> snapshot_atomic(
      std::function<void()> on_cut) override {
    return inner_.snapshot_atomic(std::move(on_cut));
  }
  Task<Result<void>> freeze() override { return inner_.freeze(); }
  Task<void> unfreeze() override { return inner_.unfreeze(); }
  Task<Result<void>> pin_grow_only() override {
    return inner_.pin_grow_only();
  }
  Task<void> unpin_grow_only() override { return inner_.unpin_grow_only(); }

  [[nodiscard]] bool is_reachable(ObjectRef ref) const override {
    // A cached copy is accessible regardless of the network.
    return cache_.contains(ref, now()) || inner_.is_reachable(ref);
  }

  [[nodiscard]] std::optional<Duration> distance(
      ObjectRef ref) const override {
    if (cache_.contains(ref, now())) return Duration::zero();  // local
    return inner_.distance(ref);
  }

  Task<Result<VersionedValue>> fetch(ObjectRef ref) override {
    if (auto hit = cache_.get(ref, now())) co_return std::move(*hit);
    Result<VersionedValue> value = co_await inner_.fetch(ref);
    if (value) cache_.put(ref, value.value(), now());
    co_return value;
  }

  Task<std::vector<Result<VersionedValue>>> fetch_many(
      std::vector<ObjectRef> refs) override {
    // Serve hits locally, batch the misses through the inner view, and admit
    // every batch result — a prefetch window's worth of fetches warms the
    // cache in one go.
    std::vector<std::optional<Result<VersionedValue>>> slots(refs.size());
    std::vector<ObjectRef> misses;
    std::vector<std::size_t> miss_index;
    for (std::size_t i = 0; i < refs.size(); ++i) {
      if (auto hit = cache_.get(refs[i], now())) {
        slots[i] = std::move(*hit);
      } else {
        misses.push_back(refs[i]);
        miss_index.push_back(i);
      }
    }
    if (!misses.empty()) {
      auto fetched = co_await inner_.fetch_many(std::move(misses));
      for (std::size_t j = 0; j < fetched.size(); ++j) {
        if (fetched[j]) {
          cache_.put(refs[miss_index[j]], fetched[j].value(), now());
        }
        slots[miss_index[j]] = std::move(fetched[j]);
      }
    }
    std::vector<Result<VersionedValue>> out;
    out.reserve(refs.size());
    for (auto& slot : slots) out.push_back(std::move(*slot));
    co_return out;
  }

  [[nodiscard]] Simulator& sim() override { return inner_.sim(); }

  [[nodiscard]] ObjectCache& cache() noexcept { return cache_; }
  [[nodiscard]] const CacheStats& stats() const noexcept {
    return cache_.stats();
  }

 private:
  [[nodiscard]] SimTime now() const { return sim_.now(); }

  SetView& inner_;
  Simulator& sim_;
  mutable ObjectCache cache_;
};

}  // namespace weakset
