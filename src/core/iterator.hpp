#pragma once

// ElementsIterator: the common shape of the five elements-iterator semantics,
// plus the options shared between them.
//
// Usage: call next() repeatedly. Each call is one *invocation* in the
// paper's sense (the first call or a resumption); it completes with a Step
// that yields an element, reports normal termination, or signals failure.
// The iterator owns the `yielded` history object (section 2.2's `remembers`
// clause) and, when a TraceRecorder is attached, records every invocation
// with ground-truth pre/post observations for the spec checkers.

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/set_view.hpp"
#include "core/step.hpp"
#include "obs/metrics.hpp"
#include "spec/trace.hpp"

namespace weakset {

enum class Semantics;

/// How an iterator picks among the reachable, not-yet-yielded candidates.
enum class PickOrder {
  kGiven,         ///< membership order as read (deterministic)
  kClosestFirst,  ///< lowest current network distance first (section 1.1)
};

/// How the optimistic iterator waits out failures. The paper's Figure 6
/// semantics blocks indefinitely ("it may never return if a failure is
/// detected"); forever() reproduces that literally, while a bounded policy
/// ends the observation window after max_attempts (reported as kExhausted,
/// recorded as `blocked` by the spec layer).
class RetryPolicy {
 public:
  RetryPolicy(std::size_t max_attempts, Duration interval)
      : max_attempts_(max_attempts), interval_(interval) {}

  static RetryPolicy forever(Duration interval = Duration::millis(100)) {
    RetryPolicy policy{0, interval};
    policy.forever_ = true;
    return policy;
  }

  [[nodiscard]] bool is_forever() const noexcept { return forever_; }
  [[nodiscard]] std::size_t max_attempts() const noexcept {
    return max_attempts_;
  }
  [[nodiscard]] Duration interval() const noexcept { return interval_; }

 private:
  std::size_t max_attempts_;
  Duration interval_;
  bool forever_ = false;
};

struct IteratorOptions {
  /// Fig 3 only: acquire the distributed freeze lock for the duration of the
  /// run, actively enforcing the immutability constraint (section 3.1's
  /// "typical implementations would use locks").
  bool enforce_freeze = false;
  /// Fig 5 only: pin the set grow-only for the duration of the run —
  /// additions proceed, removals are deferred as ghosts (section 3.3's
  /// cheap enforcement of the grow-only constraint).
  bool enforce_grow_only = false;
  /// Candidate ordering.
  PickOrder order = PickOrder::kGiven;
  /// Fig 6 only: blocking behaviour under failure.
  RetryPolicy retry = RetryPolicy{50, Duration::millis(100)};
  /// How many element fetches to keep in flight ahead of next(). 1 disables
  /// pipelining (the serial fetch-on-demand behaviour); larger windows issue
  /// batched fetches (SetView::fetch_many) for upcoming candidates while the
  /// current element is being consumed. Purely a performance knob: yield
  /// order and failure semantics are revalidated at yield time (see
  /// core/prefetcher.hpp and DESIGN.md).
  std::size_t prefetch_window = 8;
  /// Optional spec-layer recorder (nullptr: no recording overhead).
  spec::TraceRecorder* recorder = nullptr;
  /// Telemetry sink: per-figure invocation/yield counters, yield latency
  /// histograms, terminal IteratorStats fold. nullptr = the process-global
  /// registry.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Per-run observability counters (reported by benches; no semantic role).
struct IteratorStats {
  std::uint64_t invocations = 0;     ///< next() calls (paper: invocations)
  std::uint64_t fetch_attempts = 0;  ///< element fetches issued
  std::uint64_t fetch_failures = 0;  ///< element fetches that failed
  std::uint64_t skipped_unreachable = 0;  ///< candidates the failure
                                          ///< detector ruled out
  // Prefetch pipeline (all zero when prefetch_window <= 1). Invariant:
  // prefetch_hits + prefetch_misses == fetch_attempts.
  std::uint64_t prefetch_hits = 0;    ///< fetches served from the window
  std::uint64_t prefetch_misses = 0;  ///< fetches that had to wait or go out
  std::uint64_t prefetch_batches = 0;          ///< batched fetches issued
  std::uint64_t prefetch_batched_objects = 0;  ///< refs across those batches
  std::uint64_t prefetch_invalidated = 0;  ///< window entries discarded by
                                           ///< membership/reachability change
  // Membership refresh path (how each read_members() was served; Fig 5/6
  // re-read membership on every invocation, so these count the delta-sync
  // protocol's effect on the hot path).
  std::uint64_t membership_reads = 0;           ///< read_members() calls
  std::uint64_t membership_full_fragments = 0;  ///< fragments shipped full
  std::uint64_t membership_delta_fragments = 0;  ///< fragments as deltas
};

class Prefetcher;

class ElementsIterator {
 public:
  virtual ~ElementsIterator();  // out-of-line: Prefetcher is incomplete here
  ElementsIterator(const ElementsIterator&) = delete;
  ElementsIterator& operator=(const ElementsIterator&) = delete;

  /// One invocation. Calling next() again after kFinished or kFailed is not
  /// allowed.
  Task<Step> next();

  /// The `yielded` history object: elements yielded so far, in yield order.
  [[nodiscard]] const std::vector<ObjectRef>& yielded() const noexcept {
    return yielded_;
  }
  [[nodiscard]] bool has_yielded(ObjectRef ref) const {
    return yielded_index_.count(ref) > 0;
  }
  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] const IteratorStats& stats() const noexcept { return stats_; }

  /// Which point of the design space this iterator implements. Keys the
  /// per-figure telemetry namespace ("iter.<figure>.*").
  [[nodiscard]] virtual Semantics semantics() const noexcept = 0;

 protected:
  // Out-of-line like the destructor: inline special members would
  // instantiate ~unique_ptr over the incomplete Prefetcher.
  ElementsIterator(SetView& view, IteratorOptions options);

  /// The semantics-specific body of one invocation.
  virtual Task<Step> step() = 0;

  /// Runs after the terminal invocation has been recorded (kFinished or
  /// kFailed). Cleanup that re-admits mutators (releasing the freeze lock)
  /// belongs here, not in step(), so the recorded last-state still lies
  /// inside the protected window.
  virtual Task<void> on_terminal() { co_return; }

  /// Pins the spec recorder's first-state to "now" — call at the instant
  /// s_first is acquired (after the first read / at the snapshot cut).
  void mark_first_state() {
    if (options_.recorder != nullptr) options_.recorder->mark_first_state();
  }

  /// Candidates from `members` that are not yet yielded, in pick order.
  [[nodiscard]] std::vector<ObjectRef> unyielded(
      const std::vector<ObjectRef>& members) const;

  /// Reads the visible membership through the view, folding how it was
  /// served (full vs delta fragments) into the stats. Iterators that read
  /// membership per invocation use this instead of view().read_members().
  Task<Result<std::vector<ObjectRef>>> read_members_tracked();

  /// Tries to fetch candidates in order; yields the first success. Returns
  /// nullopt if every candidate was unreachable or failed to fetch.
  Task<std::optional<Step>> try_yield(std::vector<ObjectRef> candidates);

  /// Reconciles the prefetch window with the current candidate list (no-op
  /// when prefetch_window <= 1). Call once per invocation, after computing
  /// the candidates and before fetching any of them.
  void prefetch_sync(const std::vector<ObjectRef>& candidates);

  /// Fetches one element's payload, through the prefetch window when one is
  /// active. Counts the fetch attempt.
  Task<Result<VersionedValue>> fetch_element(ObjectRef ref);

  /// Discards any prefetched entry for `ref` (yield-time revalidation found
  /// it unreachable or removed).
  void prefetch_drop(ObjectRef ref);

  /// Awaits any still-in-flight prefetch batches (discarding their results).
  /// next() runs this on the terminal step so no detached batch worker —
  /// which holds the view pointer — survives a finished or failed run.
  Task<void> prefetch_quiesce();

  [[nodiscard]] SetView& view() noexcept { return view_; }
  [[nodiscard]] const IteratorOptions& options() const noexcept {
    return options_;
  }

 private:
  void note_yield(ObjectRef ref) {
    yielded_.push_back(ref);
    yielded_index_.insert(ref);
  }

  /// "iter.<figure>." — resolved on the first next() call (the vtable is not
  /// ready in the base constructor).
  const std::string& metric_prefix();
  /// Folds the run's IteratorStats into the registry (terminal step only).
  void fold_stats_into_metrics();

  SetView& view_;
  IteratorOptions options_;
  obs::MetricsRegistry& metrics_;
  std::string metric_prefix_;
  std::vector<ObjectRef> yielded_;
  std::unordered_set<ObjectRef> yielded_index_;
  bool started_ = false;
  bool done_ = false;
  IteratorStats stats_;
  std::unique_ptr<Prefetcher> prefetcher_;  // created lazily when window > 1
};

/// The points in the design space (section 3).
enum class Semantics {
  kFig1Immutable,            ///< immutable set, failures ignored
  kFig3ImmutableFailAware,   ///< immutable set with failures, pessimistic
  kFig4Snapshot,             ///< mutable set, snapshot-at-first-call
  kFig5GrowOnlyPessimistic,  ///< growing-only set, pessimistic
  kFig6Optimistic,           ///< grow-and-shrink set, optimistic (dynamic
                             ///< sets — the semantics being implemented, §5)
};

[[nodiscard]] std::string_view to_string(Semantics semantics);

/// Factory covering the whole design space.
std::unique_ptr<ElementsIterator> make_elements_iterator(
    SetView& view, Semantics semantics, IteratorOptions options = {});

/// Everything drain() observed about a full run.
class DrainResult {
 public:
  DrainResult() = default;

  [[nodiscard]] const std::vector<std::pair<ObjectRef, VersionedValue>>&
  elements() const noexcept {
    return elements_;
  }
  [[nodiscard]] bool finished() const noexcept { return finished_; }
  [[nodiscard]] const std::optional<Failure>& failure() const noexcept {
    return failure_;
  }
  [[nodiscard]] std::size_t count() const noexcept { return elements_.size(); }

  void add(ObjectRef ref, VersionedValue value) {
    elements_.emplace_back(ref, std::move(value));
  }
  void set_finished() { finished_ = true; }
  void set_failure(Failure failure) { failure_ = std::move(failure); }

 private:
  std::vector<std::pair<ObjectRef, VersionedValue>> elements_;
  bool finished_ = false;
  std::optional<Failure> failure_;
};

/// Runs the iterator to termination (or failure), collecting every yield.
Task<DrainResult> drain(ElementsIterator& iterator);

}  // namespace weakset
