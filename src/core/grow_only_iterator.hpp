#pragma once

// Figure 5: growing-only set, pessimistic failure handling.
//
// "Unlike in the previous two specifications, each invocation uses the
// current state of s, i.e., the pre-state, not first-state. If there are
// still elements to yield based on the remembered set and the current state
// of the set, then we choose a reachable one and yield it. If there are no
// more elements to yield, we terminate. Otherwise, because we cannot reach
// an element that we know is in the set, we fail."
//
// Reads go to fragment primaries (the view must be configured fresh —
// pessimism is pointless over stale replicas). When a refresh fails, the
// iterator falls back to the members it last read: under the grow-only
// environment constraint a known member is a member forever, so yielding
// from the remembered set is sound. It fails — per the pessimistic stance —
// only once no unyielded known member is reachable (or none was ever read):
// "because we cannot reach an element that we know is in the set, we fail."
//
// "Notice that since the set may grow faster than the iterator yields
// elements from it, an iterator satisfying this specification may never
// terminate" — tests exercise exactly that.

#include "core/iterator.hpp"

namespace weakset {

class GrowOnlyPessimisticIterator final : public ElementsIterator {
 public:
  GrowOnlyPessimisticIterator(SetView& view, IteratorOptions options)
      : ElementsIterator(view, std::move(options)) {}

  [[nodiscard]] Semantics semantics() const noexcept override {
    return Semantics::kFig5GrowOnlyPessimistic;
  }

 protected:
  Task<Step> step() override;
  Task<void> on_terminal() override;

 private:
  bool pinned_ = false;
  std::vector<ObjectRef> known_;  ///< last successfully-read member list
};

}  // namespace weakset
