#pragma once

// RepoSetView: the SetView over the simulated distributed repository
// (Layer B). Binds a RepositoryClient (which fixes the observing node and
// the read policy) to one collection.
//
// Fragment homes are not fixed: a live migration (src/placement, DESIGN.md
// decision 12) can rehome the fragment mid-iteration. A read against the
// retired home surfaces as kWrongEpoch and the client self-heals from its
// directory view before retrying; to the iterators above this view, a
// migration window is indistinguishable from any other transient
// unreachability (Fig 6 blocks through it, Fig 5's witness rule applies).

#include "core/set_view.hpp"
#include "store/client.hpp"
#include "store/reachable.hpp"

namespace weakset {

class RepoSetView final : public SetView {
 public:
  RepoSetView(RepositoryClient& client, CollectionId collection)
      : client_(client), collection_(collection) {}

  Task<Result<std::vector<ObjectRef>>> read_members() override {
    return client_.read_all(collection_);
  }

  [[nodiscard]] MembershipReadMode last_read_mode() const override {
    return MembershipReadMode{client_.last_read_full(),
                              client_.last_read_delta()};
  }

  Task<Result<std::vector<ObjectRef>>> snapshot_atomic(
      std::function<void()> on_cut) override {
    return client_.snapshot_atomic(collection_, std::move(on_cut));
  }

  Task<Result<void>> freeze() override {
    return client_.freeze_all(collection_);
  }

  Task<void> unfreeze() override { return client_.unfreeze_all(collection_); }

  Task<Result<void>> pin_grow_only() override {
    return client_.pin_all(collection_);
  }
  Task<void> unpin_grow_only() override {
    return client_.unpin_all(collection_);
  }

  [[nodiscard]] bool is_reachable(ObjectRef ref) const override {
    return weakset::is_reachable(client_.repo().topology(), client_.node(),
                                 ref);
  }

  [[nodiscard]] std::optional<Duration> distance(
      ObjectRef ref) const override {
    return client_.repo().topology().path_latency(client_.node(), ref.home());
  }

  Task<Result<VersionedValue>> fetch(ObjectRef ref) override {
    return client_.fetch(ref);
  }

  Task<std::vector<Result<VersionedValue>>> fetch_many(
      std::vector<ObjectRef> refs) override {
    return client_.fetch_many(std::move(refs));
  }

  [[nodiscard]] Simulator& sim() override { return client_.repo().sim(); }

  [[nodiscard]] CollectionId collection() const noexcept {
    return collection_;
  }
  [[nodiscard]] RepositoryClient& client() noexcept { return client_; }

 private:
  RepositoryClient& client_;
  CollectionId collection_;
};

}  // namespace weakset
