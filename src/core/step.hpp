#pragma once

// Step: the outcome of one invocation of the elements iterator.
//
// The paper models each resumption as an invocation that either `suspends`
// (yielding an element), `returns`, or `fails`. next() returning a Step is
// that model made concrete: kYielded = suspends, kFinished = returns,
// kFailed = fails.

#include <cassert>
#include <optional>
#include <utility>

#include "store/object.hpp"
#include "util/failure.hpp"

namespace weakset {

class Step {
 public:
  enum class Kind : std::uint8_t { kYielded, kFinished, kFailed };

  /// suspends: the iterator yields `ref` with its retrieved payload.
  static Step yielded(ObjectRef ref, VersionedValue value) {
    Step step{Kind::kYielded};
    step.ref_ = ref;
    step.value_ = std::move(value);
    return step;
  }
  /// returns: iteration is complete.
  static Step finished() { return Step{Kind::kFinished}; }
  /// fails: the iterator signals the failure exception.
  static Step failed(Failure failure) {
    Step step{Kind::kFailed};
    step.failure_ = std::move(failure);
    return step;
  }

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_yield() const noexcept {
    return kind_ == Kind::kYielded;
  }
  [[nodiscard]] bool is_finished() const noexcept {
    return kind_ == Kind::kFinished;
  }
  [[nodiscard]] bool is_failure() const noexcept {
    return kind_ == Kind::kFailed;
  }

  [[nodiscard]] ObjectRef ref() const {
    assert(is_yield());
    return ref_;
  }
  [[nodiscard]] const VersionedValue& value() const {
    assert(is_yield());
    return *value_;
  }
  [[nodiscard]] const Failure& failure() const {
    assert(is_failure());
    return *failure_;
  }

 private:
  explicit Step(Kind kind) : kind_(kind) {}

  Kind kind_;
  ObjectRef ref_;
  std::optional<VersionedValue> value_;
  std::optional<Failure> failure_;
};

}  // namespace weakset
