#pragma once

// LocalSetView: a pure, in-process SetView for Layer A (unit tests and
// property sweeps). The test script mutates membership, toggles per-element
// reachability, and injects read failures directly; no RPC or replication is
// involved, so iterator semantics can be exercised in isolation.
//
// The view doubles as the spec layer's GroundTruth and maintains its own
// MembershipTimeline, since here the visible state *is* the ground truth.

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/set_view.hpp"
#include "spec/observation.hpp"
#include "spec/timeline.hpp"
#include "spec/trace.hpp"

namespace weakset {

class LocalSetView final : public SetView, public spec::GroundTruth {
 public:
  explicit LocalSetView(Simulator& sim) : sim_(sim) {
    timeline_.set_initial({});
  }

  // -- environment script ----------------------------------------------------

  /// Adds a member with a payload (version 1, bumped on re-add).
  void add(ObjectRef ref, std::string payload) {
    assert(!frozen_ && "mutation while frozen");
    if (members_index_.insert(ref).second) {
      members_.push_back(ref);
      timeline_.record(sim_.now(), CollectionOp::Kind::kAdd, ref);
    }
    auto [it, inserted] = payloads_.try_emplace(ref);
    it->second =
        VersionedValue{std::move(payload),
                       inserted ? 1 : it->second.version() + 1};
  }

  /// Removes a member (payload stays — the object exists, just not in the
  /// set; mirrors the repository, where removal does not delete the object).
  /// While grow-only-pinned, the removal is deferred (ghost member).
  void remove(ObjectRef ref) {
    assert(!frozen_ && "mutation while frozen");
    if (pin_count_ > 0) {
      deferred_removes_.push_back(ref);
      return;
    }
    if (members_index_.erase(ref) > 0) {
      std::erase(members_, ref);
      timeline_.record(sim_.now(), CollectionOp::Kind::kRemove, ref);
    }
  }

  /// Marks `ref` (un)reachable — the scripted partition.
  void set_reachable(ObjectRef ref, bool reachable) {
    if (reachable) {
      unreachable_.erase(ref);
    } else {
      unreachable_.insert(ref);
    }
  }

  /// Makes read_members()/snapshot_atomic() fail until cleared.
  void fail_reads(std::optional<Failure> failure) {
    read_failure_ = std::move(failure);
  }

  /// Scripted per-element network distance (for closest-first ordering).
  void set_distance(ObjectRef ref, Duration distance) {
    distances_[ref] = distance;
  }

  /// Simulated costs of a membership read and an element fetch.
  void set_latencies(Duration read, Duration fetch) {
    read_latency_ = read;
    fetch_latency_ = fetch;
  }

  [[nodiscard]] const spec::MembershipTimeline& timeline() const noexcept {
    return timeline_;
  }
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

  // -- SetView ---------------------------------------------------------------

  Task<Result<std::vector<ObjectRef>>> read_members() override {
    co_await sim_.delay(read_latency_);
    if (read_failure_) co_return *read_failure_;
    co_return members_;
  }

  Task<Result<std::vector<ObjectRef>>> snapshot_atomic(
      std::function<void()> on_cut) override {
    // A local set is trivially atomic.
    co_await sim_.delay(read_latency_);
    if (read_failure_) co_return *read_failure_;
    std::vector<ObjectRef> snapshot = members_;
    if (on_cut) on_cut();
    co_return snapshot;
  }

  Task<Result<void>> freeze() override {
    co_await sim_.delay(read_latency_);
    frozen_ = true;
    co_return Ok();
  }

  Task<void> unfreeze() override {
    co_await sim_.delay(read_latency_);
    frozen_ = false;
  }

  Task<Result<void>> pin_grow_only() override {
    co_await sim_.delay(read_latency_);
    ++pin_count_;
    co_return Ok();
  }

  Task<void> unpin_grow_only() override {
    co_await sim_.delay(read_latency_);
    if (pin_count_ > 0 && --pin_count_ == 0) {
      auto ghosts = std::move(deferred_removes_);
      deferred_removes_.clear();
      for (const ObjectRef ref : ghosts) remove(ref);
    }
  }

  [[nodiscard]] bool is_reachable(ObjectRef ref) const override {
    return unreachable_.count(ref) == 0;
  }

  [[nodiscard]] std::optional<Duration> distance(
      ObjectRef ref) const override {
    if (!is_reachable(ref)) return std::nullopt;
    const auto it = distances_.find(ref);
    return it == distances_.end() ? Duration::zero() : it->second;
  }

  Task<Result<VersionedValue>> fetch(ObjectRef ref) override {
    co_await sim_.delay(fetch_latency_);
    if (!is_reachable(ref)) {
      co_return Failure{FailureKind::kUnreachable, "scripted partition"};
    }
    const auto it = payloads_.find(ref);
    if (it == payloads_.end()) {
      co_return Failure{FailureKind::kNotFound, "no payload"};
    }
    co_return it->second;
  }

  Task<std::vector<Result<VersionedValue>>> fetch_many(
      std::vector<ObjectRef> refs) override {
    // Batched read: full latency for the first object, a quarter for each
    // extra — the same overlapped-read shape as the store server's
    // fetch_batch, so Layer A tests see realistic pipelining gains.
    Duration cost = fetch_latency_;
    if (refs.size() > 1) {
      cost = cost + (fetch_latency_ / 4) *
                        static_cast<std::int64_t>(refs.size() - 1);
    }
    co_await sim_.delay(cost);
    std::vector<Result<VersionedValue>> out;
    out.reserve(refs.size());
    for (const ObjectRef ref : refs) {
      if (!is_reachable(ref)) {
        out.emplace_back(Failure{FailureKind::kUnreachable,
                                 "scripted partition"});
        continue;
      }
      const auto it = payloads_.find(ref);
      if (it == payloads_.end()) {
        out.emplace_back(Failure{FailureKind::kNotFound, "no payload"});
      } else {
        out.emplace_back(it->second);
      }
    }
    co_return out;
  }

  [[nodiscard]] Simulator& sim() override { return sim_; }

  // -- spec::GroundTruth -----------------------------------------------------

  [[nodiscard]] spec::SetObservation observe() const override {
    std::set<ObjectRef> members{members_.begin(), members_.end()};
    std::set<ObjectRef> reachable;
    for (const ObjectRef ref : members_) {
      if (is_reachable(ref)) reachable.insert(ref);
    }
    return spec::SetObservation{std::move(members), std::move(reachable)};
  }

  [[nodiscard]] bool reachable(ObjectRef ref) const override {
    return is_reachable(ref);
  }

  [[nodiscard]] SimTime now() const override { return sim_.now(); }

 private:
  Simulator& sim_;
  std::vector<ObjectRef> members_;
  std::unordered_set<ObjectRef> members_index_;
  std::unordered_map<ObjectRef, VersionedValue> payloads_;
  std::unordered_set<ObjectRef> unreachable_;
  std::unordered_map<ObjectRef, Duration> distances_;
  std::optional<Failure> read_failure_;
  Duration read_latency_ = Duration::micros(10);
  Duration fetch_latency_ = Duration::micros(10);
  bool frozen_ = false;
  std::size_t pin_count_ = 0;
  std::vector<ObjectRef> deferred_removes_;
  spec::MembershipTimeline timeline_;
};

}  // namespace weakset
