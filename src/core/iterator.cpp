#include "core/iterator.hpp"

#include <algorithm>
#include <cassert>

#include "core/fig1_iterator.hpp"
#include "core/grow_only_iterator.hpp"
#include "core/immutable_iterator.hpp"
#include "core/optimistic_iterator.hpp"
#include "core/prefetcher.hpp"
#include "core/snapshot_iterator.hpp"

namespace weakset {

ElementsIterator::ElementsIterator(SetView& view, IteratorOptions options)
    : view_(view),
      options_(std::move(options)),
      metrics_(obs::sink(options_.metrics)) {}

ElementsIterator::~ElementsIterator() = default;

const std::string& ElementsIterator::metric_prefix() {
  if (metric_prefix_.empty()) {
    metric_prefix_ = "iter.";
    metric_prefix_ += to_string(semantics());
    metric_prefix_ += '.';
  }
  return metric_prefix_;
}

void ElementsIterator::fold_stats_into_metrics() {
  const std::string& p = metric_prefix_;
  metrics_.add(p + "runs");
  metrics_.add(p + "fetch_attempts", stats_.fetch_attempts);
  metrics_.add(p + "fetch_failures", stats_.fetch_failures);
  metrics_.add(p + "skipped_unreachable", stats_.skipped_unreachable);
  metrics_.add(p + "prefetch_hits", stats_.prefetch_hits);
  metrics_.add(p + "prefetch_misses", stats_.prefetch_misses);
  metrics_.add(p + "prefetch_batches", stats_.prefetch_batches);
  metrics_.add(p + "prefetch_batched_objects",
               stats_.prefetch_batched_objects);
  metrics_.add(p + "prefetch_invalidated", stats_.prefetch_invalidated);
  metrics_.add(p + "membership_reads", stats_.membership_reads);
  metrics_.add(p + "membership_full_fragments",
               stats_.membership_full_fragments);
  metrics_.add(p + "membership_delta_fragments",
               stats_.membership_delta_fragments);
}

Task<Step> ElementsIterator::next() {
  assert(!done_ && "next() called after the iterator terminated");
  ++stats_.invocations;
  const std::string& prefix = metric_prefix();
  metrics_.add(prefix + "invocations");
  const SimTime invoked_at = view_.sim().now();
  spec::TraceRecorder* recorder = options_.recorder;
  if (recorder != nullptr) {
    if (!started_) recorder->begin();
    recorder->observe_pre();
  }
  started_ = true;

  Step result = co_await step();

  // Yield latency is the paper's user-visible cost: how long one invocation
  // held the caller before suspending (or terminating).
  metrics_.record(prefix + "yield_latency_ns", view_.sim().now() - invoked_at);
  if (result.is_yield()) {
    note_yield(result.ref());
    metrics_.add(prefix + "yields");
  } else {
    done_ = true;
    if (result.kind() == Step::Kind::kFinished) {
      metrics_.add(prefix + "finished");
    } else if (result.failure().kind == FailureKind::kExhausted) {
      metrics_.add(prefix + "blocked");
    } else {
      metrics_.add(prefix + "failed");
    }
  }
  if (recorder != nullptr) {
    spec::StepOutcome outcome = spec::StepOutcome::kReturned;
    std::optional<ObjectRef> element;
    switch (result.kind()) {
      case Step::Kind::kYielded:
        outcome = spec::StepOutcome::kSuspended;
        element = result.ref();
        break;
      case Step::Kind::kFinished:
        outcome = spec::StepOutcome::kReturned;
        break;
      case Step::Kind::kFailed:
        // A bounded optimistic run that exhausted its retry budget models
        // "would have blocked forever; the observation window ended here".
        outcome = (result.failure().kind == FailureKind::kExhausted)
                      ? spec::StepOutcome::kBlocked
                      : spec::StepOutcome::kFailed;
        break;
    }
    recorder->record(outcome, element);
  }
  if (done_) {
    co_await prefetch_quiesce();
    co_await on_terminal();
    fold_stats_into_metrics();  // after cleanup: the stats are final
  }
  co_return result;
}

std::vector<ObjectRef> ElementsIterator::unyielded(
    const std::vector<ObjectRef>& members) const {
  std::vector<ObjectRef> out;
  out.reserve(members.size());
  for (const ObjectRef ref : members) {
    if (yielded_index_.count(ref) == 0) out.push_back(ref);
  }
  if (options_.order == PickOrder::kClosestFirst) {
    std::stable_sort(out.begin(), out.end(),
                     [this](ObjectRef a, ObjectRef b) {
                       const auto da = view_.distance(a);
                       const auto db = view_.distance(b);
                       // Unreachable (nullopt) sorts last.
                       if (da && db) return *da < *db;
                       return da.has_value() && !db.has_value();
                     });
  }
  return out;
}

Task<Result<std::vector<ObjectRef>>> ElementsIterator::read_members_tracked() {
  Result<std::vector<ObjectRef>> members = co_await view_.read_members();
  ++stats_.membership_reads;
  if (members.has_value()) {
    const SetView::MembershipReadMode mode = view_.last_read_mode();
    stats_.membership_full_fragments += mode.full;
    stats_.membership_delta_fragments += mode.delta;
  }
  co_return members;
}

void ElementsIterator::prefetch_sync(
    const std::vector<ObjectRef>& candidates) {
  if (options_.prefetch_window <= 1) return;
  if (!prefetcher_) {
    prefetcher_ = std::make_unique<Prefetcher>(
        view_, options_.prefetch_window, stats_, metrics_);
  }
  prefetcher_->sync(candidates);
}

Task<Result<VersionedValue>> ElementsIterator::fetch_element(ObjectRef ref) {
  ++stats_.fetch_attempts;
  if (prefetcher_) co_return co_await prefetcher_->fetch(ref);
  co_return co_await view_.fetch(ref);
}

void ElementsIterator::prefetch_drop(ObjectRef ref) {
  if (prefetcher_) prefetcher_->drop(ref);
}

Task<void> ElementsIterator::prefetch_quiesce() {
  if (prefetcher_) co_await prefetcher_->quiesce();
}

Task<std::optional<Step>> ElementsIterator::try_yield(
    std::vector<ObjectRef> candidates) {
  prefetch_sync(candidates);
  for (const ObjectRef ref : candidates) {
    // Reachability is decided *now*, against the live failure detector, even
    // when the payload was prefetched earlier — so the per-figure failure
    // behaviour is unchanged by pipelining.
    if (!view_.is_reachable(ref)) {
      ++stats_.skipped_unreachable;
      prefetch_drop(ref);
      continue;
    }
    Result<VersionedValue> value = co_await fetch_element(ref);
    if (value) co_return Step::yielded(ref, std::move(value).value());
    ++stats_.fetch_failures;
    // Transient fetch failure (e.g. the partition arose between the
    // reachability check and the fetch): try the next candidate.
  }
  co_return std::nullopt;
}

std::string_view to_string(Semantics semantics) {
  switch (semantics) {
    case Semantics::kFig1Immutable:
      return "fig1-immutable";
    case Semantics::kFig3ImmutableFailAware:
      return "fig3-immutable-failures";
    case Semantics::kFig4Snapshot:
      return "fig4-snapshot";
    case Semantics::kFig5GrowOnlyPessimistic:
      return "fig5-grow-only";
    case Semantics::kFig6Optimistic:
      return "fig6-optimistic";
  }
  return "?";
}

std::unique_ptr<ElementsIterator> make_elements_iterator(
    SetView& view, Semantics semantics, IteratorOptions options) {
  switch (semantics) {
    case Semantics::kFig1Immutable:
      return std::make_unique<Fig1Iterator>(view, std::move(options));
    case Semantics::kFig3ImmutableFailAware:
      return std::make_unique<ImmutableIterator>(view, std::move(options));
    case Semantics::kFig4Snapshot:
      return std::make_unique<SnapshotIterator>(view, std::move(options));
    case Semantics::kFig5GrowOnlyPessimistic:
      return std::make_unique<GrowOnlyPessimisticIterator>(view,
                                                           std::move(options));
    case Semantics::kFig6Optimistic:
      return std::make_unique<OptimisticIterator>(view, std::move(options));
  }
  return nullptr;
}

Task<DrainResult> drain(ElementsIterator& iterator) {
  DrainResult result;
  for (;;) {
    Step step = co_await iterator.next();
    switch (step.kind()) {
      case Step::Kind::kYielded:
        result.add(step.ref(), step.value());
        break;
      case Step::Kind::kFinished:
        result.set_finished();
        co_return result;
      case Step::Kind::kFailed:
        result.set_failure(step.failure());
        co_return result;
    }
  }
}

}  // namespace weakset
