#pragma once

// Prefetcher: the iterator-side fetch pipeline.
//
// An elements iterator consumes candidates strictly in pick order, but
// nothing in any of the five specifications requires the element *payloads*
// to be requested serially — fetching is I/O, not semantics. The prefetcher
// keeps a window of fetches in flight ahead of next(): sync() reconciles the
// window with the current candidate list and tops it up with one batched
// fetch_many() call (which the repository view turns into per-node
// store.fetch_batch RPCs), and fetch() consumes the result for one ref,
// serving it instantly when the prefetch already landed.
//
// Semantics preservation is the caller's contract, enforced in two places:
//   - sync() drops window entries whose ref left the candidate set, so a
//     payload prefetched for an element that was then removed (and whose
//     removal the iterator observed) can never be yielded;
//   - the iterator revalidates reachability at yield time and calls drop()
//     instead of consuming, so the failure/blocking behaviour of Figures
//     3/5/6 is decided against the failure detector *now*, exactly as the
//     serial path decides it.
// What prefetching may change is only payload currency: a consumed value can
// be up to one window older than a serial fetch would have returned — the
// paper's cached-copy-as-history-object trade (section 3), bounded by the
// window.
//
// Lifetime: batch workers are detached simulator processes holding the view
// pointer. The iterator awaits quiesce() on its terminal step, so after a
// run has finished or failed no worker is still in flight; only an iterator
// abandoned mid-run keeps the contract that the view must outlive any
// in-flight batch (drain the simulator before tearing the view down).

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/set_view.hpp"
#include "obs/metrics.hpp"
#include "sim/channel.hpp"

namespace weakset {

struct IteratorStats;

class Prefetcher {
 public:
  /// `window` must be >= 2 (window 1 is the iterator's serial path, which
  /// never constructs a prefetcher). `stats` receives the prefetch counters;
  /// `metrics` receives the window-occupancy histogram.
  Prefetcher(SetView& view, std::size_t window, IteratorStats& stats,
             obs::MetricsRegistry& metrics);

  /// Reconciles the window with the current candidate list (in pick order):
  /// drops entries whose ref is no longer a candidate, and — once the window
  /// has drained below half — refills it with one batched fetch over the
  /// first untracked, reachable candidates. Refilling in half-window batches
  /// (instead of one ref per yield) is what keeps the per-node RPCs batched.
  void sync(const std::vector<ObjectRef>& candidates);

  /// Consumes the result for `ref`: serves the completed prefetch (hit),
  /// awaits the in-flight one, or falls back to a direct fetch (miss).
  Task<Result<VersionedValue>> fetch(ObjectRef ref);

  /// Discards any window entry for `ref` without consuming it (yield-time
  /// revalidation found it unreachable; a later retry refetches fresh).
  void drop(ObjectRef ref);

  /// Awaits every outstanding window entry and discards the results, so no
  /// batch worker (each holds the view pointer) is still in flight when the
  /// caller starts tearing the view down.
  Task<void> quiesce();

 private:
  /// One window entry: completed by the batch worker, consumed by fetch().
  /// Heap-shared so a worker can land a result for an entry that sync()
  /// already dropped (the result is then discarded).
  struct Slot {
    explicit Slot(Simulator& sim) : cell(sim) {}
    OneShot<Result<VersionedValue>> cell;
  };

  static Task<void> batch_worker(SetView* view, std::vector<ObjectRef> refs,
                                 std::vector<std::shared_ptr<Slot>> slots);

  SetView& view_;
  std::size_t window_;
  std::size_t low_water_;
  IteratorStats& stats_;
  obs::MetricsRegistry& metrics_;
  std::unordered_map<ObjectRef, std::shared_ptr<Slot>> slots_;
};

}  // namespace weakset
