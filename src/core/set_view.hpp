#pragma once

// SetView: the client-side capabilities an elements iterator needs from the
// underlying set object. The five iterator semantics are written against
// this interface, so the same code runs over the pure in-memory view (unit
// tests, Layer A) and the simulated distributed repository (Layer B).
//
// The capability ladder mirrors the cost ladder of section 3 of the paper:
//   read_members      one loose read of visible membership (may be stale)
//   snapshot_atomic   an atomic whole-set read ("extremely expensive")
//   freeze/unfreeze   the distributed lock behind true immutability
//   is_reachable      the transport layer's failure detector
//   fetch             retrieve an element's payload (the act of yielding)
//   fetch_many        batched fetch: many payloads in per-node round trips

#include <functional>
#include <optional>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/task.hpp"
#include "store/object.hpp"
#include "util/result.hpp"

namespace weakset {

class SetView {
 public:
  /// How the last read_members() was served, in fragment counts: shipped in
  /// full vs served incrementally through the delta-sync protocol
  /// (DESIGN.md decision 9). Purely observational — IteratorStats folds
  /// these into its membership counters.
  struct MembershipReadMode {
    std::uint64_t full = 0;
    std::uint64_t delta = 0;
  };

  virtual ~SetView() = default;

  /// One loose read of the membership as visible to this client. Under
  /// distribution this may be stale (replica reads) and is not atomic across
  /// fragments.
  virtual Task<Result<std::vector<ObjectRef>>> read_members() = 0;

  /// How the most recent read_members() was served. The default says "one
  /// full read": a view that doesn't know about delta sync ships the whole
  /// membership. Distributed views report their real fragment counts.
  [[nodiscard]] virtual MembershipReadMode last_read_mode() const {
    return MembershipReadMode{1, 0};
  }

  /// An atomic snapshot of the whole logical set — the "one atomic action"
  /// that the Figure 4 semantics requires. `on_cut`, if set, is invoked at
  /// the instant the snapshot is consistent (while mutators are still
  /// excluded); the spec recorder uses it to pin the first-state.
  virtual Task<Result<std::vector<ObjectRef>>> snapshot_atomic(
      std::function<void()> on_cut) = 0;

  /// Blocks all mutation of the set until unfreeze() (or lease expiry). The
  /// substrate for enforcing the immutability constraint during a run.
  virtual Task<Result<void>> freeze() = 0;
  virtual Task<void> unfreeze() = 0;

  /// Pins the set grow-only until unpin_grow_only(): additions proceed,
  /// removals are deferred ("ghost" members, section 3.3). The cheap
  /// enforcement substrate for the Figure 5 constraint during a run.
  virtual Task<Result<void>> pin_grow_only() = 0;
  virtual Task<void> unpin_grow_only() = 0;

  /// Is `ref` currently accessible from this client? (Cheap local test
  /// against the failure detector; the paper assumes failures are
  /// detectable.)
  [[nodiscard]] virtual bool is_reachable(ObjectRef ref) const = 0;

  /// Current network distance to `ref`'s home; nullopt if unreachable. Used
  /// by closest-first yield ordering (section 1.1: "fetching 'closer' files
  /// first").
  [[nodiscard]] virtual std::optional<Duration> distance(
      ObjectRef ref) const = 0;

  /// Retrieves the payload behind `ref` — yielding an element means actually
  /// delivering its object to the client.
  virtual Task<Result<VersionedValue>> fetch(ObjectRef ref) = 0;

  /// Retrieves several payloads; results align with `refs` by index and the
  /// call itself never fails (per-ref failures travel in the results). The
  /// default degrades to one fetch() per ref; distributed views override it
  /// to batch refs into per-node scatter-gather RPCs, which is what makes
  /// iterator prefetching cheap over a wide-area repository.
  virtual Task<std::vector<Result<VersionedValue>>> fetch_many(
      std::vector<ObjectRef> refs) {
    std::vector<Result<VersionedValue>> out;
    out.reserve(refs.size());
    for (const ObjectRef ref : refs) out.push_back(co_await fetch(ref));
    co_return out;
  }

  [[nodiscard]] virtual Simulator& sim() = 0;
};

}  // namespace weakset
