#include "core/grow_only_iterator.hpp"

namespace weakset {

Task<void> GrowOnlyPessimisticIterator::on_terminal() {
  if (pinned_) {
    pinned_ = false;
    co_await view().unpin_grow_only();
  }
}

Task<Step> GrowOnlyPessimisticIterator::step() {
  if (options().enforce_grow_only && !pinned_) {
    Result<void> pinned = co_await view().pin_grow_only();
    if (!pinned) co_return Step::failed(pinned.error());
    pinned_ = true;
  }
  // Each invocation reads the *current* state (s_pre) — the hot path the
  // delta-sync protocol makes near-free when nothing changed.
  Result<std::vector<ObjectRef>> members = co_await read_members_tracked();
  if (!members) {
    // Grow-only makes the remembered member list sound forever, so a failed
    // refresh need not end the run while known members are still yieldable.
    // We cannot *terminate* on stale knowledge, though — the set may have
    // grown behind the outage — so an exhausted remembered list fails with
    // the refresh error.
    std::vector<ObjectRef> remembered = unyielded(known_);
    if (remembered.empty()) co_return Step::failed(std::move(members).error());
    std::optional<Step> stale_yield = co_await try_yield(std::move(remembered));
    if (stale_yield) co_return std::move(*stale_yield);
    co_return Step::failed(Failure{
        FailureKind::kUnreachable, "known member of s_pre is unreachable"});
  }
  known_ = members.value();

  std::vector<ObjectRef> candidates = unyielded(members.value());
  if (candidates.empty()) co_return Step::finished();  // yielded = s_pre

  std::optional<Step> yielded = co_await try_yield(std::move(candidates));
  if (yielded) co_return std::move(*yielded);

  // An element we know is in the set cannot be reached: fail.
  co_return Step::failed(Failure{
      FailureKind::kUnreachable, "known member of s_pre is unreachable"});
}

}  // namespace weakset
