#include "load/workload.hpp"

#include <cassert>
#include <string>
#include <utility>

#include "core/repo_view.hpp"
#include "sim/channel.hpp"
#include "store/client.hpp"
#include "util/shard.hpp"

namespace weakset::load {
namespace {

/// Per-session seed fork: splitmix-style mixing of the run seed and the
/// session index, so each session's stream is independent of spawn order
/// (same idiom as StoreServer's per-node disk lottery).
std::uint64_t session_seed(std::uint64_t seed, std::size_t index) {
  return seed ^ (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(index) +
                                          1));
}

}  // namespace

/// Open-loop bookkeeping shared between a session and its in-flight ops.
/// Session and ops live on the same gateway shard, so plain fields suffice;
/// the Gate resumes through the event queue like every sim primitive.
struct LoadEngine::SessionSync {
  explicit SessionSync(Simulator& sim) : done(sim) {}
  std::size_t outstanding = 0;
  bool issued_all = false;
  Gate done;
};

LoadEngine::LoadEngine(Repository& repo, std::vector<NodeId> gateways,
                       LoadOptions options)
    : repo_(repo),
      options_(options),
      metrics_(obs::sink(options.metrics)) {
  assert(!gateways.empty() && "load engine needs at least one gateway node");
  assert((options_.directories.empty() ||
          options_.directories.size() == gateways.size()) &&
         "directories must be empty or per-gateway");
  gateways_.reserve(gateways.size());
  for (const NodeId node : gateways) {
    gateways_.push_back(std::make_unique<GatewayState>(node));
  }
}

LoadEngine::~LoadEngine() = default;

void LoadEngine::build() {
  assert(collections_.empty() && "build() is once");
  assert(options_.tenants > 0 && options_.collections_per_tenant > 0);
  assert(options_.objects_per_collection > 0);
  const std::vector<NodeId>& servers = repo_.server_nodes();
  assert(!servers.empty() && "add servers before building the workload");

  // Normalise the op mix into cumulative thresholds for one uniform draw.
  const double total =
      options_.mix.insert + options_.mix.remove + options_.mix.iterate;
  assert(total > 0.0 && "op mix must have positive weight");
  mix_insert_ = options_.mix.insert / total;
  mix_remove_ = mix_insert_ + options_.mix.remove / total;

  zipf_.emplace(options_.collections_per_tenant, options_.zipf_theta);

  // Tenant-major collections; fragment primaries and object homes
  // round-robin over the servers with a per-collection offset so load
  // spreads evenly at build time (the *traffic* skew comes from Zipf).
  for (std::size_t t = 0; t < options_.tenants; ++t) {
    for (std::size_t c = 0; c < options_.collections_per_tenant; ++c) {
      const std::size_t base = t * options_.collections_per_tenant + c;
      std::vector<NodeId> primaries;
      primaries.reserve(options_.fragments);
      for (std::size_t f = 0; f < options_.fragments; ++f) {
        primaries.push_back(servers[(base + f) % servers.size()]);
      }
      const CollectionId id = repo_.create_collection(primaries);
      repo_.tag_tenant(id, t);
      std::vector<ObjectRef> pool;
      pool.reserve(options_.objects_per_collection);
      for (std::size_t o = 0; o < options_.objects_per_collection; ++o) {
        const NodeId home = servers[(base + o) % servers.size()];
        ObjectRef ref = repo_.create_object(
            home, "load-t" + std::to_string(t) + "-c" + std::to_string(c) +
                      "-o" + std::to_string(o));
        // Seed half of each pool as initial membership: removes have
        // something to remove, inserts have something absent to insert.
        if (o < options_.objects_per_collection / 2) {
          repo_.seed_member(id, ref);
        }
        pool.push_back(ref);
      }
      collections_.push_back(id);
      pools_.push_back(std::move(pool));
    }
  }
}

LoadStats LoadEngine::stats() const {
  LoadStats folded;
  for (const auto& gw : gateways_) {
    folded.sessions_started += gw->stats.sessions_started;
    folded.sessions_finished += gw->stats.sessions_finished;
    folded.ops_offered += gw->stats.ops_offered;
    folded.ops_ok += gw->stats.ops_ok;
    folded.ops_overloaded += gw->stats.ops_overloaded;
    folded.ops_failed += gw->stats.ops_failed;
    folded.elements_yielded += gw->stats.elements_yielded;
  }
  return folded;
}

Task<void> LoadEngine::run() {
  assert(!collections_.empty() && "call build() before run()");
  Simulator& sim = repo_.sim();
  Rng arrivals{options_.seed};
  for (std::size_t index = 0; index < options_.sessions; ++index) {
    {
      // Home the session on its gateway's shard. Serial-shard events run
      // alone (workers quiesced), so pushing the spawn onto another shard's
      // queue here is race-free.
      const GatewayState& gw = *gateways_[gateway_of(index)];
      ShardGuard guard{sim.sharded() ? sim.node_shard(gw.node.raw()) : 0};
      sim.spawn(session(index));
    }
    co_await sim.delay(arrivals.exponential(options_.mean_interarrival));
  }
  // Join: poll the per-gateway slabs until every session departed. Reading
  // them from the serial shard is race-free for the same reason as above.
  while (stats().sessions_finished < options_.sessions) {
    co_await sim.delay(options_.poll_interval);
  }
}

void LoadEngine::run_to_completion() {
  Simulator& sim = repo_.sim();
  bool done = false;
  {
    ShardGuard guard{sim.serial_shard()};
    sim.spawn([](LoadEngine* self, bool* flag) -> Task<void> {
      co_await self->run();
      *flag = true;
    }(this, &done));
  }
  while (!done && sim.step()) {
  }
  assert(done && "load run did not complete (deadlocked workload?)");
}

Task<void> LoadEngine::session(std::size_t index) {
  GatewayState& gw = *gateways_[gateway_of(index)];
  ++gw.stats.sessions_started;
  metrics_.add("load.sessions");
  Rng rng{session_seed(options_.seed, index)};
  const std::size_t tenant = index % options_.tenants;

  // Session lifetime: uniform around the configured mean op count.
  const auto lo =
      static_cast<std::int64_t>(std::max<std::size_t>(
          1, options_.ops_per_session / 2));
  const auto hi = static_cast<std::int64_t>(std::max<std::size_t>(
      static_cast<std::size_t>(lo), options_.ops_per_session * 3 / 2));
  const auto op_count =
      static_cast<std::size_t>(rng.uniform_range(lo, hi));

  ClientOptions copts;
  copts.rpc_timeout = options_.rpc_timeout;
  copts.metrics = options_.metrics;
  if (!options_.directories.empty()) {
    copts.directory = options_.directories[gateway_of(index)];
  }

  if (options_.mode == ArrivalMode::kClosedLoop) {
    RepositoryClient client{repo_, gw.node, copts};
    for (std::size_t i = 0; i < op_count; ++i) {
      co_await repo_.sim().delay(rng.exponential(options_.think_time));
      co_await run_op(gw, client, tenant, rng);
    }
  } else {
    // Open loop: fire ops on the timer regardless of completion (shared
    // client + sync block keep everything on this gateway's shard), then
    // wait for stragglers before departing.
    auto client = std::make_shared<RepositoryClient>(repo_, gw.node, copts);
    auto sync = std::make_shared<SessionSync>(repo_.sim());
    for (std::size_t i = 0; i < op_count; ++i) {
      ++sync->outstanding;
      repo_.sim().spawn(
          run_op_detached(gw, client, tenant, rng.fork(), sync));
      co_await repo_.sim().delay(rng.exponential(options_.op_interval));
    }
    sync->issued_all = true;
    if (sync->outstanding > 0) co_await sync->done.wait();
  }
  ++gw.stats.sessions_finished;
  metrics_.add("load.sessions_finished");
}

Task<void> LoadEngine::run_op_detached(GatewayState& gw,
                                       std::shared_ptr<RepositoryClient>
                                           client,
                                       std::size_t tenant, Rng rng,
                                       std::shared_ptr<SessionSync> sync) {
  co_await run_op(gw, *client, tenant, rng);
  --sync->outstanding;
  if (sync->outstanding == 0 && sync->issued_all) sync->done.open();
}

Task<void> LoadEngine::run_op(GatewayState& gw, RepositoryClient& client,
                              std::size_t tenant, Rng& rng) {
  ++gw.stats.ops_offered;
  metrics_.add("load.ops_offered");
  const std::size_t rank = zipf_->sample(rng);
  const std::size_t slot = tenant * options_.collections_per_tenant + rank;
  const CollectionId coll = collections_[slot];
  const std::vector<ObjectRef>& pool = pools_[slot];
  const double draw = rng.uniform_double();
  const SimTime start = repo_.sim().now();

  bool ok = false;
  std::optional<Failure> failure;
  if (draw < mix_remove_) {
    // No co_await inside a conditional expression: GCC 12 destroys the
    // selected arm's temporary before the copy-out (double free).
    const ObjectRef ref = rng.pick(pool);
    Result<bool> result{false};
    if (draw < mix_insert_) {
      result = co_await client.add(coll, ref);
    } else {
      result = co_await client.remove(coll, ref);
    }
    ok = result.has_value();
    if (!ok) failure = result.error();
  } else {
    RepoSetView view{client, coll};
    auto iterator =
        make_elements_iterator(view, options_.iterate_semantics, {});
    const DrainResult result = co_await drain(*iterator);
    gw.stats.elements_yielded += result.count();
    metrics_.add("load.iterate_elements", result.count());
    ok = result.finished();
    if (!ok && result.failure()) failure = *result.failure();
  }

  metrics_.record("load.op_latency_ns", repo_.sim().now() - start);
  if (ok) {
    ++gw.stats.ops_ok;
    metrics_.add("load.ops_ok");
  } else if (failure && failure->kind == FailureKind::kOverloaded) {
    ++gw.stats.ops_overloaded;
    metrics_.add("load.ops_overloaded");
  } else {
    ++gw.stats.ops_failed;
    metrics_.add("load.ops_failed");
  }
}

}  // namespace weakset::load
