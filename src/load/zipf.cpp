#include "load/zipf.hpp"

#include <cassert>
#include <cmath>

namespace weakset::load {
namespace {

/// zeta(n, theta) = sum_{i=1..n} 1/i^theta. O(n), but paid once per sampler
/// at construction — never per sample.
double zeta(std::size_t n, double theta) {
  double sum = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace

ZipfianSampler::ZipfianSampler(std::size_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0 && "Zipfian over an empty universe");
  assert(theta > 0.0 && theta < 1.0 && "theta must be in (0, 1)");
  zetan_ = zeta(n, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta(2, theta) / zetan_);
}

std::size_t ZipfianSampler::sample(Rng& rng) const {
  // Gray et al. closed-form inverse: the two most popular ranks get exact
  // thresholds, the tail is the interpolated power curve.
  const double u = rng.uniform_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (n_ >= 2 && uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::size_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;  // clamp the floating-point edge
}

}  // namespace weakset::load
