#pragma once

// Deterministic Zipfian rank sampler for workload skew.
//
// Real multi-user workloads are not uniform: a few collections take most of
// the traffic (the "popular directories" regime the paper's location
// database example implies). The standard generator for that skew is the
// Gray et al. "Quickly Generating Billion-Record Synthetic Databases"
// rejection-free Zipfian sampler, later popularised by YCSB: ranks 0..n-1
// are drawn with P(rank = k) proportional to 1/(k+1)^theta, from one
// uniform double per sample.
//
// All randomness flows through the repo's seeded Rng (util/rng.hpp), so a
// sampler fed the same Rng stream produces the same rank sequence on every
// run — the property the load engine's byte-identical telemetry (and
// load_test's determinism check) rests on. The zeta constants are
// precomputed at construction: sampling is two pows and a few multiplies,
// no loop over n.

#include <cstddef>

#include "util/rng.hpp"

namespace weakset::load {

/// Draws ranks in [0, n) with Zipfian skew: rank 0 is the most popular,
/// P(rank = k) ~ 1/(k+1)^theta. theta in (0, 1); 0.99 is the classic
/// YCSB default (heavier skew as theta -> 1).
class ZipfianSampler {
 public:
  ZipfianSampler(std::size_t n, double theta = 0.99);

  /// The next rank, consuming exactly one uniform double from `rng`.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double theta() const noexcept { return theta_; }

 private:
  std::size_t n_;
  double theta_;
  double zetan_;  ///< zeta(n, theta) = sum_{i=1..n} i^-theta
  double alpha_;  ///< 1 / (1 - theta)
  double eta_;    ///< Gray et al. interpolation constant
};

}  // namespace weakset::load
