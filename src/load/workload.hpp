#pragma once

// LoadEngine: open- and closed-loop workload generation at population scale
// (DESIGN.md decision 15).
//
// Every earlier bench drives one (or a handful of) client coroutines. The
// LoadEngine spawns tens of thousands of simulated client *sessions* on the
// sim clock: sessions arrive as a Poisson process, live for a bounded number
// of operations, and depart — the churn of a real user population. Each
// session belongs to a tenant (round-robin by arrival index), picks
// collections inside its tenant's namespace with Zipfian popularity
// (load/zipf.hpp), and runs a configurable op mix of inserts, removes, and
// full iterator drains at one of the paper's figure semantics.
//
// Two pacing disciplines:
//
//   kClosedLoop — a session waits for each op to complete, then thinks
//                 (exponential think time) before the next. Offered load is
//                 throttled by completion: the classic latency-measurement
//                 regime.
//   kOpenLoop   — a session fires ops on an exponential timer regardless of
//                 completion, like independent users who do not coordinate.
//                 Offered load is set by the timer alone, which is what
//                 makes genuine *overload* (offered > capacity) expressible;
//                 the session departs only after its in-flight ops resolve.
//
// Scale without O(nodes^2) topology: sessions are lightweight coroutines
// multiplexed over a small set of client gateway nodes (a session's RPCs
// originate at its gateway), so 100k sessions need 8 gateway nodes, not
// 100k topology nodes. Sessions run on their gateway's shard (DESIGN.md
// decision 14) and record into per-gateway stats slabs plus the obs
// registry's per-shard children; the arrival/join process runs on the
// serial shard, whose events execute alone, so its spawns and its
// cross-gateway stat folds are race-free and the whole run is
// byte-identical for any worker count.
//
// Outcome accounting distinguishes kOverloaded (the admission controller
// shed the request — the explicit back-off signal) from other failures, so
// goodput (ops_ok / elapsed) vs offered load (ops_offered / elapsed) curves
// fall straight out of the stats.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/iterator.hpp"
#include "load/zipf.hpp"
#include "obs/metrics.hpp"
#include "store/repository.hpp"

namespace weakset {
class RepositoryClient;  // store/client.hpp (sessions own one each)
}

namespace weakset::load {

/// How sessions pace their operations.
enum class ArrivalMode : std::uint8_t {
  kClosedLoop,  ///< wait for completion + think time (self-throttling)
  kOpenLoop,    ///< fire on a timer regardless of completion (can overload)
};

/// Relative weights of the per-session op mix (normalised internally).
struct OpMix {
  double insert = 0.45;
  double remove = 0.25;
  double iterate = 0.30;
};

struct LoadOptions {
  /// Total sessions to arrive over the run.
  std::size_t sessions = 1000;
  /// Tenants (sessions round-robin across them; collections are tagged so
  /// the server's admission queues are per-tenant).
  std::size_t tenants = 4;
  /// Collections per tenant namespace; within a tenant, session ops pick
  /// collection 0 most often (Zipfian rank by popularity).
  std::size_t collections_per_tenant = 4;
  /// Zipfian skew of collection popularity (YCSB default 0.99).
  double zipf_theta = 0.99;
  /// Fragments per collection (round-robin over the repo's servers).
  std::size_t fragments = 1;
  /// Pre-created object pool per collection; sessions insert/remove pool
  /// objects (pure data-path RPCs — no global-state mutation mid-run). The
  /// first half of each pool is seeded as initial membership.
  std::size_t objects_per_collection = 16;
  /// Session arrival process: exponential inter-arrival with this mean.
  Duration mean_interarrival = Duration::micros(500);
  /// Session lifetime in operations: drawn per session, uniform in
  /// [ops_per_session/2, ops_per_session*3/2] (min 1).
  std::size_t ops_per_session = 6;
  ArrivalMode mode = ArrivalMode::kClosedLoop;
  /// Closed loop: exponential think time between ops.
  Duration think_time = Duration::millis(10);
  /// Open loop: exponential op-timer interval (sets offered load).
  Duration op_interval = Duration::millis(10);
  OpMix mix;
  /// Which figure semantics iterate ops run.
  Semantics iterate_semantics = Semantics::kFig1Immutable;
  /// Per-RPC timeout of session clients: under kUnbounded admission a
  /// queued-forever request must eventually fail at the caller.
  Duration rpc_timeout = Duration::seconds(1);
  /// Per-gateway placement sources. When non-empty (size must equal the
  /// gateway count) each session's client resolves placement through its
  /// gateway's entry instead of the authoritative map — the directory data
  /// path (DESIGN.md decision 12) under population-scale load, with
  /// kWrongEpoch self-heal when the rebalancer moves a fragment mid-run.
  /// One source per gateway keeps every cache mutation on that gateway's
  /// shard in --workers mode.
  std::vector<DirectorySource*> directories;
  std::uint64_t seed = 1;
  /// Join-poll granularity of run() (serial-shard heartbeat).
  Duration poll_interval = Duration::millis(5);
  /// Telemetry sink. nullptr = the process-global registry.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Folded run accounting (deterministic: per-gateway slabs summed in
/// gateway order).
struct LoadStats {
  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_finished = 0;
  std::uint64_t ops_offered = 0;     ///< ops issued (all kinds)
  std::uint64_t ops_ok = 0;          ///< completed successfully (goodput)
  std::uint64_t ops_overloaded = 0;  ///< explicit kOverloaded rejections
  std::uint64_t ops_failed = 0;      ///< other failures (timeouts, crashes)
  std::uint64_t elements_yielded = 0;  ///< elements across iterate drains
};

/// Drives one workload run against a Repository through gateway nodes.
/// Usage: build() once (pre-run; creates collections, pools, tenant tags),
/// then run_to_completion() — or spawn run() on the serial shard and drive
/// the simulator yourself.
class LoadEngine {
 public:
  LoadEngine(Repository& repo, std::vector<NodeId> gateways,
             LoadOptions options);
  ~LoadEngine();
  LoadEngine(const LoadEngine&) = delete;
  LoadEngine& operator=(const LoadEngine&) = delete;

  /// Creates the tenant collections, object pools, and tenant tags. Call
  /// before the simulator runs (setup is direct state manipulation).
  void build();

  /// The whole run as one coroutine: session arrivals (exponential), then a
  /// join loop until every session departed. Must execute on the serial
  /// shard in sharded mode — its events run alone between parallel windows,
  /// which is what makes its cross-shard spawns and stat reads race-free.
  [[nodiscard]] Task<void> run();

  /// Convenience driver: spawns run() on the serial shard and steps the
  /// simulator until it completes (cf. run_task, which would home the task
  /// on the caller's shard instead).
  void run_to_completion();

  /// Folded accounting across gateways (stable fold order).
  [[nodiscard]] LoadStats stats() const;

  /// All collections, grouped tenant-major: collections()[t * C + rank] is
  /// tenant t's rank-th most popular collection.
  [[nodiscard]] const std::vector<CollectionId>& collections() const noexcept {
    return collections_;
  }

  [[nodiscard]] const LoadOptions& options() const noexcept {
    return options_;
  }

 private:
  /// Per-gateway accounting slab: written only by sessions homed on that
  /// gateway's shard, read by the serial-shard join loop (which runs alone).
  struct GatewayState {
    explicit GatewayState(NodeId node) : node(node) {}
    NodeId node;
    LoadStats stats;
  };

  /// Open-loop bookkeeping shared between a session and its in-flight ops
  /// (same shard; the session departs only once all ops resolved).
  struct SessionSync;

  [[nodiscard]] std::size_t gateway_of(std::size_t session_index) const {
    return session_index % gateways_.size();
  }

  Task<void> session(std::size_t index);
  /// One operation: pick collection (Zipf) + op kind (mix), run it, classify
  /// the outcome into `gw.stats` and the latency histogram.
  Task<void> run_op(GatewayState& gw, RepositoryClient& client,
                    std::size_t tenant, Rng& rng);
  /// Open-loop wrapper: run_op, then signal the session's sync block.
  Task<void> run_op_detached(GatewayState& gw,
                             std::shared_ptr<RepositoryClient> client,
                             std::size_t tenant, Rng rng,
                             std::shared_ptr<SessionSync> sync);

  Repository& repo_;
  LoadOptions options_;
  obs::MetricsRegistry& metrics_;
  std::vector<std::unique_ptr<GatewayState>> gateways_;
  std::vector<CollectionId> collections_;
  /// Object pools, aligned with collections_.
  std::vector<std::vector<ObjectRef>> pools_;
  /// Rank sampler within a tenant namespace (const after build: shard-safe).
  std::optional<ZipfianSampler> zipf_;
  double mix_insert_ = 0.0;  ///< normalised mix thresholds
  double mix_remove_ = 0.0;  ///< (cumulative; iterate is the remainder)
};

}  // namespace weakset::load
