// Quickstart: create a weak set over a small simulated wide-area repository
// and iterate it under every point of the paper's design space.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "core/weak_set.hpp"

using namespace weakset;

namespace {

Task<void> demo(Simulator& sim, Repository& repo, WeakSet& set,
                Topology& topo, NodeId far_server) {
  // 1. The benign case: every semantics yields all five elements.
  for (const Semantics semantics :
       {Semantics::kFig1Immutable, Semantics::kFig3ImmutableFailAware,
        Semantics::kFig4Snapshot, Semantics::kFig5GrowOnlyPessimistic,
        Semantics::kFig6Optimistic}) {
    auto iterator = set.elements(semantics);
    const SimTime start = sim.now();
    DrainResult result = co_await drain(*iterator);
    std::printf("%-26s yielded %zu elements in %6.2fms  (%s)\n",
                std::string(to_string(semantics)).c_str(), result.count(),
                (sim.now() - start).as_millis(),
                result.finished() ? "returned"
                                  : to_string(*result.failure()).c_str());
  }

  // 2. Now partition one server away and compare pessimistic vs optimistic.
  std::printf("\n-- partitioning the far server away --\n");
  topo.partition({{topo.nodes()[0], topo.nodes()[1], topo.nodes()[2]},
                  {far_server}});

  {
    auto iterator = set.elements(Semantics::kFig3ImmutableFailAware);
    DrainResult result = co_await drain(*iterator);
    std::printf("fig3 (pessimistic): %zu elements, then %s\n", result.count(),
                result.failure() ? to_string(*result.failure()).c_str()
                                 : "returned");
  }
  {
    // The optimistic iterator blocks until the partition heals (3s from now).
    sim.schedule(Duration::seconds(3), [&topo] { topo.heal(); });
    IteratorOptions options;
    options.retry = RetryPolicy::forever(Duration::millis(250));
    auto iterator = set.elements(Semantics::kFig6Optimistic, options);
    const SimTime start = sim.now();
    DrainResult result = co_await drain(*iterator);
    std::printf(
        "fig6 (optimistic):  %zu elements after riding out the partition "
        "(%0.1fs)\n",
        result.count(), (sim.now() - start).as_seconds());
  }
  repo.stop_all_daemons();
}

}  // namespace

int main() {
  Simulator sim;
  Topology topo;
  const NodeId client_node = topo.add_node("workstation");
  const NodeId near_server = topo.add_node("dept-server");
  const NodeId mid_server = topo.add_node("campus-server");
  const NodeId far_server = topo.add_node("overseas-archive");
  topo.connect(client_node, near_server, Duration::millis(2));
  topo.connect(client_node, mid_server, Duration::millis(15));
  topo.connect(client_node, far_server, Duration::millis(90));
  topo.connect(near_server, mid_server, Duration::millis(10));
  topo.connect(mid_server, far_server, Duration::millis(80));
  topo.connect(near_server, far_server, Duration::millis(85));

  RpcNetwork net{sim, topo, Rng{2026}};
  Repository repo{net};
  for (const NodeId node : {near_server, mid_server, far_server}) {
    repo.add_server(node);
  }

  RepositoryClient client{repo, client_node};
  WeakSet set = WeakSet::create(repo, client, {near_server});
  int i = 0;
  for (const NodeId home :
       {near_server, near_server, mid_server, mid_server, far_server}) {
    repo.seed_member(set.id(),
                     repo.create_object(home, "object-" + std::to_string(i++)));
  }

  std::printf("weak set with 5 members across 3 servers\n\n");
  run_task(sim, demo(sim, repo, set, topo, far_server));
  return 0;
}
