// The paper's third example: "suppose you are a tourist in Pittsburgh and
// want to look at the on-line menus of all Chinese restaurants before
// choosing where to eat for dinner" — "we would not go hungry if our
// restaurant search missed some (but not all) Chinese restaurants".
//
// The tourist is on a mobile, intermittently-connected laptop: mid-search
// the uplink drops, then comes back. A dynamic set streams menus in as they
// arrive (closest first), keeps partial results through the disconnection,
// and finishes once the link is back.
//
// Build & run:   ./build/examples/restaurant_guide

#include <cstdio>
#include <string>
#include <vector>

#include "dynset/dynamic_set.hpp"
#include "fs/dist_fs.hpp"
#include "query/query_set.hpp"

using namespace weakset;

namespace {

Task<void> dinner_search(Simulator& sim, Repository& repo,
                         QuerySetView& menus) {
  DynSetOptions options;
  options.order = PickOrder::kClosestFirst;
  options.prefetch_depth = 3;
  options.membership_refresh = Duration::millis(250);
  options.retry = RetryPolicy{40, Duration::millis(250)};
  auto guide = DynamicSet::open(menus, options);

  const SimTime start = sim.now();
  std::printf("searching for chinese menus...\n\n");
  for (;;) {
    Step step = co_await guide->iterate();
    if (step.is_yield()) {
      const FileInfo menu = FileInfo::decode(step.value().data());
      std::printf("  [%8.1fms] %-22s %s\n", (sim.now() - start).as_millis(),
                  menu.name().c_str(), menu.contents().c_str());
      continue;
    }
    if (step.is_finished()) {
      std::printf("\nall reachable menus retrieved (%.1fs) — enjoy dinner!\n",
                  (sim.now() - start).as_seconds());
    } else {
      std::printf("\nsearch gave up with %zu menus (%s) — still enough to "
                  "choose from\n",
                  guide->yielded().size(), to_string(step.failure()).c_str());
    }
    break;
  }
  guide->close();
  repo.stop_all_daemons();
}

}  // namespace

int main() {
  Simulator sim;
  Topology topo;
  const NodeId laptop = topo.add_node("tourist-laptop");
  const NodeId city_hub = topo.add_node("city-infohub");

  struct Restaurant {
    const char* file;
    const char* cuisine;
    const char* blurb;
    int latency_ms;
  };
  const std::vector<Restaurant> restaurants = {
      {"golden-palace.menu", "chinese", "dumplings, mapo tofu", 5},
      {"sichuan-gourmet.menu", "chinese", "dan dan noodles", 12},
      {"primanti.menu", "sandwiches", "fries inside", 8},
      {"jade-garden.menu", "chinese", "dim sum all day", 30},
      {"china-star.menu", "chinese", "hand-pulled noodles", 55},
      {"pasta-piatto.menu", "italian", "tagliatelle", 18}};

  // Each restaurant publishes its menu on its own host behind the city hub.
  topo.connect(laptop, city_hub, Duration::millis(20));
  std::vector<NodeId> hosts;
  RpcNetwork net{sim, topo, Rng{7}};
  Repository repo{net};
  repo.add_server(city_hub);
  DistFileSystem fs{repo};
  for (const Restaurant& r : restaurants) {
    const NodeId host = topo.add_node(r.file);
    topo.connect(host, city_hub, Duration::millis(r.latency_ms));
    hosts.push_back(host);
    repo.add_server(host);
    fs.create_unlinked_file(
        host, r.file, std::string(r.cuisine) + " — " + r.blurb);
  }

  // The laptop's uplink drops 300ms into the search (after the first menus
  // have arrived) and returns 2s later (walking through a tunnel).
  sim.schedule(Duration::millis(300), [&topo, laptop, city_hub] {
    std::printf("  -- uplink lost --\n");
    topo.set_link_up(laptop, city_hub, false);
  });
  sim.schedule(Duration::millis(2100), [&topo, laptop, city_hub] {
    std::printf("  -- uplink restored --\n");
    topo.set_link_up(laptop, city_hub, true);
  });

  QueryService service{repo};
  service.install_all();
  ClientOptions copts;
  copts.rpc_timeout = Duration::millis(400);
  RepositoryClient client{repo, laptop, copts};
  QuerySetView menus{client, PredicateSpec::contains("chinese"), hosts,
                     QueryMode::kBestEffort};

  run_task(sim, dinner_search(sim, repo, menus));
  return 0;
}
