// A wide-area `find`: walk a directory tree whose subtrees live on
// different hosts, matching files against a predicate, skipping whatever a
// failure makes unreachable — "finding all files that satisfy a given
// predicate" (section 1.1) across an AFS-like volume layout.
//
// Build & run:   ./build/examples/wide_find

#include <cstdio>

#include "fs/walk.hpp"
#include "query/predicate.hpp"

using namespace weakset;

namespace {

Task<void> find_tex_files(Simulator& sim, Repository& repo,
                          RepositoryClient& client, Directory root) {
  const PredicateSpec pred = PredicateSpec::name_glob("*.tex");
  // Materialised in a declaration, NOT inline in the co_await expression:
  // GCC 12 bitwise-copies closure temporaries in co_await full-expressions
  // (DESIGN.md decision 6).
  const FileFilter filter = [pred](const FileInfo& f) {
    return pred.matches(f);
  };
  DynSetOptions options;
  options.retry = RetryPolicy{4, Duration::millis(100)};
  options.membership_refresh = Duration::millis(100);
  const SimTime start = sim.now();
  const WalkResult result = co_await walk(client, root, filter, options);
  std::printf("$ find / -name '*.tex'   (%.0fms, %zu directories%s)\n\n",
              (sim.now() - start).as_millis(), result.directories_visited(),
              result.complete() ? "" : ", PARTIAL: subtree(s) unreachable");
  for (const FoundFile& file : result.files()) {
    std::printf("  /%s\n", file.path().c_str());
  }
  std::printf("\n");
  repo.stop_all_daemons();
}

}  // namespace

int main() {
  Simulator sim;
  Topology topo;
  const NodeId workstation = topo.add_node("workstation");
  const NodeId local = topo.add_node("local-volume");
  const NodeId dept = topo.add_node("dept-volume");
  const NodeId archive = topo.add_node("archive-volume");
  topo.connect(workstation, local, Duration::millis(2));
  topo.connect(workstation, dept, Duration::millis(15));
  topo.connect(workstation, archive, Duration::millis(70));
  topo.connect(local, dept, Duration::millis(10));
  topo.connect(dept, archive, Duration::millis(50));
  topo.connect(local, archive, Duration::millis(60));

  RpcNetwork net{sim, topo, Rng{12}};
  Repository repo{net};
  for (const NodeId node : {local, dept, archive}) repo.add_server(node);
  DistFileSystem fs{repo};

  // /              local
  //   draft.tex
  //   papers/      dept
  //     weak-sets.tex, reviews.txt
  //     old/       archive
  //       thesis.tex
  //   photos/      archive
  //     face.pbm
  const Directory root = fs.mkdir(local);
  fs.create_file(root, local, "draft.tex", "\\documentclass...");
  const Directory papers = fs.make_subdir(root, dept, local, "papers");
  fs.create_file(papers, dept, "weak-sets.tex", "...");
  fs.create_file(papers, dept, "reviews.txt", "...");
  const Directory old = fs.make_subdir(papers, archive, dept, "old");
  fs.create_file(old, archive, "thesis.tex", "...");
  const Directory photos = fs.make_subdir(root, archive, local, "photos");
  fs.create_file(photos, archive, "face.pbm", "P1 48 48 ...");

  RepositoryClient client{repo, workstation};

  std::printf("== all volumes up ==\n\n");
  run_task(sim, find_tex_files(sim, repo, client, root));

  std::printf("== the archive volume crashes ==\n\n");
  topo.crash(archive);
  run_task(sim, find_tex_files(sim, repo, client, root));
  return 0;
}
