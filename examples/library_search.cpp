// The paper's second example: "suppose through the on-line library
// information system (LIS) you want to get a list of papers by a particular
// author" — and "if the LIS database is not up-to-date, we would not be
// surprised if an author's most recent paper is not listed".
//
// Three archive sites hold the catalogue; the client reads the *nearest
// replica* of the index collection, which lags the primary by the
// anti-entropy interval. The example runs the same search twice around a
// new-paper insertion and around a partition, demonstrating exactly the
// weak-set effects the paper predicts.
//
// Build & run:   ./build/examples/library_search

#include <cstdio>
#include <string>
#include <vector>

#include "core/weak_set.hpp"
#include "fs/file.hpp"

using namespace weakset;

namespace {

Task<void> search(Simulator& sim, WeakSet& catalogue, const char* label) {
  auto iterator = catalogue.elements(Semantics::kFig6Optimistic);
  const SimTime start = sim.now();
  std::printf("%s\n", label);
  std::size_t hits = 0;
  for (;;) {
    Step step = co_await iterator->next();
    if (step.is_yield()) {
      const FileInfo entry = FileInfo::decode(step.value().data());
      std::printf("  %-28s %s\n", entry.name().c_str(),
                  entry.contents().c_str());
      ++hits;
      continue;
    }
    break;
  }
  std::printf("  -> %zu entries in %.1fms\n\n", hits,
              (sim.now() - start).as_millis());
}

Task<void> scenario(Simulator& sim, Repository& repo, WeakSet& catalogue,
                    RepositoryClient& librarian, ObjectRef new_paper) {
  co_await search(sim, catalogue, "search #1 (initial catalogue):");

  // A librarian at the primary site adds the author's newest paper.
  (void)co_await librarian.add(catalogue.id(), new_paper);
  std::printf("(librarian adds 'specifying-weak-sets-1995')\n\n");

  // Searching again immediately may still miss it: the nearby replica has
  // not pulled yet. That is the paper's "not up-to-date" tolerance.
  co_await search(sim, catalogue,
                  "search #2 (immediately after the add, via stale replica):");

  // After the anti-entropy interval, the new entry appears.
  co_await sim.delay(Duration::millis(300));
  co_await search(sim, catalogue, "search #3 (replica has converged):");

  repo.stop_all_daemons();
}

}  // namespace

int main() {
  Simulator sim;
  Topology topo;
  const NodeId reader = topo.add_node("reader");
  const NodeId main_lib = topo.add_node("main-library");
  const NodeId branch = topo.add_node("branch-library");
  const NodeId papers_host = topo.add_node("paper-archive");
  topo.connect(reader, main_lib, Duration::millis(60));   // far primary
  topo.connect(reader, branch, Duration::millis(3));      // near replica
  topo.connect(reader, papers_host, Duration::millis(8));
  topo.connect(main_lib, branch, Duration::millis(40));
  topo.connect(main_lib, papers_host, Duration::millis(40));
  topo.connect(branch, papers_host, Duration::millis(10));

  RpcNetwork net{sim, topo, Rng{42}};
  Repository repo{net};
  StoreServerOptions server_options;
  server_options.pull_interval = Duration::millis(200);
  for (const NodeId node : {main_lib, branch, papers_host}) {
    repo.add_server(node, server_options);
  }

  // The author's catalogue: a collection homed at the main library with a
  // replica at the branch.
  RepositoryClient client{repo, reader};  // kNearest by default
  WeakSet catalogue = WeakSet::create(repo, client, {main_lib});
  repo.add_replica(catalogue.id(), 0, branch);

  const std::vector<std::pair<const char*, const char*>> entries = {
      {"two-tiered-specs-1983", "J. Wing, MIT PhD thesis"},
      {"larch-book-1993", "Horning, Guttag, et al."},
      {"subtypes-oopsla-1993", "B. Liskov and J. Wing"}};
  for (const auto& [name, detail] : entries) {
    repo.seed_member(catalogue.id(),
                     repo.create_object(papers_host,
                                        FileInfo{name, detail}.encode()));
  }
  // Let the replica converge on the initial contents.
  sim.run_until(sim.now() + Duration::millis(500));

  const ObjectRef new_paper = repo.create_object(
      papers_host,
      FileInfo{"specifying-weak-sets-1995", "J. Wing and D. Steere"}.encode());

  RepositoryClient librarian{repo, main_lib};
  std::printf("LIS search: papers by J. Wing\n\n");
  run_task(sim, scenario(sim, repo, catalogue, librarian, new_paper));
  return 0;
}
