// The file-system scenario from section 1.1: ls over a directory whose
// files live on many nodes. Strict POSIX ls must access every file before
// printing anything — one dead fileserver and it returns nothing. ls over a
// dynamic set streams entries as they arrive and still lists every
// accessible file when a server is down.
//
// Build & run:   ./build/examples/dynamic_ls

#include <cstdio>
#include <string>
#include <vector>

#include "fs/ls.hpp"

using namespace weakset;

namespace {

void print_result(const char* label, const LsResult& result, SimTime start) {
  std::printf("%s\n", label);
  for (std::size_t i = 0; i < result.names().size(); ++i) {
    std::printf("  [%7.1fms] %s\n",
                (result.arrival_times()[i] - start).as_millis(),
                result.names()[i].c_str());
  }
  if (result.complete()) {
    std::printf("  -> complete, %zu entries\n\n", result.names().size());
  } else {
    std::printf("  -> PARTIAL (%zu entries): %s\n\n", result.names().size(),
                result.failure() ? to_string(*result.failure()).c_str()
                                 : "?");
  }
}

Task<void> compare(Simulator& sim, Repository& repo, RepositoryClient& client,
                   Directory dir, Topology& topo, NodeId flaky_server) {
  {
    const SimTime start = sim.now();
    LsResult strict = co_await ls_strict(client, dir);
    print_result("$ ls  (strict, all servers up)", strict, start);
  }
  {
    const SimTime start = sim.now();
    DynSetOptions options;
    options.order = PickOrder::kClosestFirst;
    LsResult dynamic = co_await ls_dynamic(client, dir, options);
    print_result("$ dynls  (dynamic set, all servers up)", dynamic, start);
  }

  std::printf("-- fileserver '%s' crashes --\n\n",
              topo.name(flaky_server).c_str());
  topo.crash(flaky_server);

  {
    const SimTime start = sim.now();
    LsResult strict = co_await ls_strict(client, dir);
    print_result("$ ls  (strict, one server down)", strict, start);
  }
  {
    const SimTime start = sim.now();
    DynSetOptions options;
    options.order = PickOrder::kClosestFirst;
    options.retry = RetryPolicy{4, Duration::millis(100)};
    options.membership_refresh = Duration::millis(100);
    LsResult dynamic = co_await ls_dynamic(client, dir, options);
    print_result("$ dynls  (dynamic set, one server down)", dynamic, start);
  }
  repo.stop_all_daemons();
}

}  // namespace

int main() {
  Simulator sim;
  Topology topo;
  const NodeId workstation = topo.add_node("workstation");
  const std::vector<std::pair<const char*, int>> layout = {
      {"local-disk", 1}, {"dept-server", 6}, {"campus-afs", 25},
      {"remote-mirror", 110}};
  std::vector<NodeId> servers;
  for (const auto& [name, ms] : layout) {
    const NodeId node = topo.add_node(name);
    topo.connect(workstation, node, Duration::millis(ms));
    servers.push_back(node);
  }
  for (std::size_t i = 0; i < servers.size(); ++i) {
    for (std::size_t j = i + 1; j < servers.size(); ++j) {
      topo.connect(servers[i], servers[j], Duration::millis(30));
    }
  }

  RpcNetwork net{sim, topo, Rng{3}};
  Repository repo{net};
  for (const NodeId node : servers) repo.add_server(node);
  DistFileSystem fs{repo};

  // ~/papers: 12 files spread over the four servers.
  const Directory dir = fs.mkdir(servers[0]);
  const char* names[] = {"abstract.tex", "biblio.bib",   "draft-v1.tex",
                         "draft-v2.tex", "figures.ps",   "intro.tex",
                         "makefile",     "notes.txt",    "related.tex",
                         "results.dat",  "reviews.txt",  "summary.tex"};
  for (int i = 0; i < 12; ++i) {
    fs.create_file(dir, servers[static_cast<std::size_t>(i) % servers.size()],
                   names[i], "contents of " + std::string(names[i]));
  }

  RepositoryClient client{repo, workstation};
  run_task(sim, compare(sim, repo, client, dir, topo, servers[3]));
  return 0;
}
