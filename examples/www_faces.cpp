// The paper's opening example: "Suppose you are browsing the World Wide Web
// and want to display the .face files of all people listed on Carnegie
// Mellon's home page."
//
// The .face files live on personal workstations scattered across campus and
// beyond; some are down or partitioned at any given moment. The browse is a
// query-defined weak set iterated optimistically: faces appear as they
// arrive, inaccessible ones simply don't block the page.
//
// Build & run:   ./build/examples/www_faces

#include <cstdio>
#include <string>
#include <vector>

#include "core/iterator.hpp"
#include "fs/dist_fs.hpp"
#include "query/query_set.hpp"

using namespace weakset;

namespace {

Task<void> browse(Simulator& sim, Repository& repo, QuerySetView& faces) {
  std::printf("browsing: display all *.face files\n\n");
  IteratorOptions options;
  options.order = PickOrder::kClosestFirst;
  options.retry = RetryPolicy{6, Duration::millis(300)};
  auto iterator = make_elements_iterator(faces, Semantics::kFig6Optimistic,
                                         options);
  const SimTime start = sim.now();
  for (;;) {
    Step step = co_await iterator->next();
    if (step.is_yield()) {
      const FileInfo file = FileInfo::decode(step.value().data());
      std::printf("  [%7.1fms] rendered %-18s (%s)\n",
                  (sim.now() - start).as_millis(), file.name().c_str(),
                  file.contents().c_str());
      continue;
    }
    if (step.is_finished()) {
      std::printf("\npage complete after %.1fms\n",
                  (sim.now() - start).as_millis());
    } else {
      std::printf("\npage shows %zu faces; the rest are unreachable (%s)\n",
                  iterator->yielded().size(),
                  to_string(step.failure()).c_str());
    }
    break;
  }
  repo.stop_all_daemons();
}

}  // namespace

int main() {
  Simulator sim;
  Topology topo;
  const NodeId browser = topo.add_node("browser");

  // Personal workstations hosting .face files, at various distances.
  struct Person {
    const char* name;
    int latency_ms;
  };
  const std::vector<Person> people = {
      {"wing", 3},    {"steere", 5},   {"garlan", 8},  {"king", 12},
      {"satya", 20},  {"herlihy", 45}, {"lampson", 90}};
  std::vector<NodeId> workstations;
  for (const Person& person : people) {
    const NodeId ws =
        topo.add_node(std::string(person.name) + "-workstation");
    topo.connect(browser, ws, Duration::millis(person.latency_ms));
    workstations.push_back(ws);
  }
  topo.set_routing(Topology::Routing::kDirectOnly);

  RpcNetwork net{sim, topo, Rng{1994}};
  Repository repo{net};
  DistFileSystem fs{repo};
  for (std::size_t i = 0; i < workstations.size(); ++i) {
    repo.add_server(workstations[i]);
    fs.create_unlinked_file(workstations[i],
                            std::string(people[i].name) + ".face",
                            "48x48 bitmap of " + std::string(people[i].name));
    // Unrelated content that the query must not match.
    fs.create_unlinked_file(workstations[i], "todo.txt", "buy milk");
  }

  // Two workstations are unreachable mid-browse (powered off / partitioned).
  topo.crash(workstations[5]);
  sim.schedule(Duration::millis(200), [&topo, &workstations] {
    topo.crash(workstations[6]);
  });

  ClientOptions copts;
  copts.rpc_timeout = Duration::millis(400);  // snappy failure detection
  RepositoryClient client{repo, browser, copts};
  QueryService service{repo};
  service.install_all();
  QuerySetView faces{client, PredicateSpec::name_glob("*.face"),
                     workstations, QueryMode::kBestEffort};

  run_task(sim, browse(sim, repo, faces));
  return 0;
}
