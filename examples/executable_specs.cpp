// Executable specifications — the paper's core contribution, demonstrated.
//
// One scripted environment (a set that mutates and partly loses
// reachability mid-run) is iterated under three different semantics. Each
// run is recorded as a computation in the paper's model (section 2:
// alternating states and transitions, the yielded history object,
// suspends/returns/fails), rendered in the paper's notation, checked
// against all five figure specifications, and classified.
//
// Build & run:   ./build/examples/executable_specs

#include <cstdio>

#include "core/iterator.hpp"
#include "core/local_view.hpp"
#include "spec/render.hpp"
#include "spec/specs.hpp"

using namespace weakset;

namespace {

ObjectRef ref(std::uint64_t id) { return ObjectRef{ObjectId{id}, NodeId{0}}; }

void run_and_check(Semantics semantics) {
  Simulator sim;
  LocalSetView view{sim};
  for (std::uint64_t i = 1; i <= 3; ++i) {
    view.add(ref(i), "payload" + std::to_string(i));
  }
  view.set_latencies(Duration::millis(1), Duration::millis(10));

  // The scripted environment: obj4 appears at 15ms; obj2 becomes
  // unreachable at 25ms and heals at 200ms.
  sim.schedule(Duration::millis(15), [&view] { view.add(ref(4), "late"); });
  sim.schedule(Duration::millis(25),
               [&view] { view.set_reachable(ref(2), false); });
  sim.schedule(Duration::millis(200),
               [&view] { view.set_reachable(ref(2), true); });

  spec::TraceRecorder recorder{view};
  IteratorOptions options;
  options.recorder = &recorder;
  options.retry = RetryPolicy{20, Duration::millis(50)};
  auto iterator = make_elements_iterator(view, semantics, options);
  (void)run_task(sim, drain(*iterator));

  const auto trace = recorder.finish();
  std::printf("================  %s  ================\n\n%s\n\n",
              std::string(to_string(semantics)).c_str(),
              spec::render(trace).c_str());
  std::printf("%s\n", spec::render(spec::check_fig1(trace)).c_str());
  std::printf("%s\n", spec::render(spec::check_fig3(trace)).c_str());
  std::printf("%s\n", spec::render(spec::check_fig4(trace)).c_str());
  std::printf("%s\n", spec::render(spec::check_fig5(trace)).c_str());
  std::printf("%s\n",
              spec::render(spec::check_fig6(trace, view.timeline())).c_str());
  std::printf("%s\n\n",
              spec::render(spec::classify(trace, view.timeline())).c_str());
}

}  // namespace

int main() {
  std::printf(
      "One environment, three semantics: the set {obj1..obj3} gains obj4 at "
      "15ms;\nobj2 is unreachable from 25ms to 200ms.\n\n");
  run_and_check(Semantics::kFig4Snapshot);
  run_and_check(Semantics::kFig5GrowOnlyPessimistic);
  run_and_check(Semantics::kFig6Optimistic);
  return 0;
}
