// FIG5 — Figure 5: growing-only set, pessimistic failure handling.
//
// A grow-only churn process adds members while the iterator runs; each
// invocation reads the *current* state, so growth is picked up. A second
// sweep injects a mid-run partition to show the pessimistic fast-fail.
//
// Expected shape: yields = initial + growth seen (more growth at shorter
// intervals); with a partition the run fails quickly after yielding only
// reachable members; zero Figure 5 spec violations.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace weakset::bench {
namespace {

void BM_Fig5Growth(benchmark::State& state) {
  const int n = 24;
  const int interval_ms = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WorldConfig config;
    World world{config};
    const CollectionId coll = world.make_collection(n);
    // Pessimism needs fresh reads: primary-only policy.
    ClientOptions copts;
    copts.read_policy = ReadPolicy::kPrimaryOnly;
    RepositoryClient client{*world.repo, world.client_node, copts};
    WeakSet set{client, coll};

    world.spawn_churn(coll, Duration::millis(interval_ms),
                      /*remove_bias=*/0.0,  // grow-only
                      world.sim.now() + Duration::millis(800),
                      config.seed ^ 0x90);

    spec::RepoGroundTruth truth{*world.repo, coll, world.client_node};
    spec::TraceRecorder recorder{truth};
    IteratorOptions options;
    options.recorder = &recorder;
    auto iterator = set.elements(Semantics::kFig5GrowOnlyPessimistic, options);
    const SimTime start = world.sim.now();
    const DrainResult result = run_task(world.sim, drain(*iterator));

    state.counters["yields"] = static_cast<double>(result.count());
    state.counters["growth_seen"] =
        static_cast<double>(result.count() > static_cast<std::size_t>(n)
                                ? result.count() - static_cast<std::size_t>(n)
                                : 0);
    state.counters["sim_ms"] = (world.sim.now() - start).as_millis();
    state.counters["fig5_violations"] = static_cast<double>(
        spec::check_fig5(recorder.finish()).violation_count());
  }
}
BENCHMARK(BM_Fig5Growth)
    ->Arg(10)
    ->Arg(40)
    ->Arg(160)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Fig5FailFast(benchmark::State& state) {
  const int n = 32;
  const int cut_at_ms = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 4;
    World world{config};
    const CollectionId coll = world.make_collection(n);
    ClientOptions copts;
    copts.read_policy = ReadPolicy::kPrimaryOnly;
    RepositoryClient client{*world.repo, world.client_node, copts};
    WeakSet set{client, coll};

    // Cut one member-holding server (not the collection primary) mid-run.
    world.sim.schedule(Duration::millis(cut_at_ms), [&world] {
      world.topo.set_link_up(world.client_node, world.servers[3], false);
    });

    auto iterator = set.elements(Semantics::kFig5GrowOnlyPessimistic);
    const SimTime start = world.sim.now();
    const DrainResult result = run_task(world.sim, drain(*iterator));

    state.counters["yields"] = static_cast<double>(result.count());
    state.counters["failed"] = result.failure().has_value() ? 1 : 0;
    state.counters["sim_ms"] = (world.sim.now() - start).as_millis();
  }
}
BENCHMARK(BM_Fig5FailFast)
    ->Arg(50)
    ->Arg(400)
    ->Arg(100000)  // effectively never
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
