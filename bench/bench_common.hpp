#pragma once

// Shared scaffolding for the experiment benchmarks: a deterministic
// wide-area world builder and workload processes.
//
// All measurements are of *simulated* time (the virtual clock), which is the
// quantity the paper's claims are about. google-benchmark is used as the
// runner/reporter; each experiment pins Iterations(1) (runs are
// deterministic) and reports its metrics through counters.

#include <algorithm>
#include <charconv>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/weak_set.hpp"
#include "fs/dist_fs.hpp"
#include "obs/metrics.hpp"
#include "query/scan.hpp"
#include "spec/repo_truth.hpp"
#include "spec/specs.hpp"
#include "util/shard.hpp"

/// Drop-in replacement for BENCHMARK_MAIN() that understands
/// --metrics-out=FILE and --workers=N: both flags are stripped before
/// google-benchmark sees the argv (it rejects unknown flags). On exit the
/// process-global metrics registry — where every component deposits its
/// telemetry by default — is exported as JSON. Runs are deterministic in
/// simulated time, so two invocations with the same seed — at *any* worker
/// count — produce byte-identical files.
#define WEAKSET_BENCHMARK_MAIN()                                             \
  int main(int argc, char** argv) {                                          \
    ::weakset::bench::extract_workers(argc, argv);                           \
    const std::optional<std::string> weakset_metrics_out =                   \
        ::weakset::obs::extract_metrics_out(argc, argv);                     \
    ::benchmark::Initialize(&argc, argv);                                    \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;      \
    ::benchmark::RunSpecifiedBenchmarks();                                   \
    ::benchmark::Shutdown();                                                 \
    if (weakset_metrics_out &&                                               \
        !::weakset::obs::global().write_json_file(*weakset_metrics_out)) {   \
      return 1;                                                              \
    }                                                                        \
    return 0;                                                                \
  }                                                                          \
  int main(int, char**)

namespace weakset::bench {

/// Worker count requested via --workers=N. 0 (the default) keeps the classic
/// single-threaded event loop; N >= 1 runs every World sharded per node with
/// N worker threads (N=1 exercises the sharded engine without concurrency —
/// useful as the determinism baseline).
inline std::uint32_t& worker_flag() {
  static std::uint32_t workers = 0;
  return workers;
}

/// Strips a `--workers=N` argument from argv (if present) into worker_flag().
inline void extract_workers(int& argc, char** argv) {
  constexpr std::string_view kFlag = "--workers=";
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    if (arg.substr(0, kFlag.size()) == kFlag) {
      const std::string_view value = arg.substr(kFlag.size());
      std::uint32_t parsed = 0;
      std::from_chars(value.data(), value.data() + value.size(), parsed);
      worker_flag() = parsed;
      continue;  // strip: downstream flag parsers must not see it
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
}

struct WorldConfig {
  int servers = 4;
  /// Client-to-server latency ramps linearly from `near` to `far` across the
  /// servers (a campus disk next door through an overseas archive).
  Duration near = Duration::millis(2);
  Duration far = Duration::millis(100);
  /// Server-to-server latency.
  Duration mesh = Duration::millis(30);
  std::uint64_t seed = 1;
  StoreServerOptions server_options = {};
};

/// One self-contained simulated deployment: topology, RPC fabric,
/// repository, servers, and a client node.
class World {
 public:
  explicit World(const WorldConfig& config) {
    config_ = config;
    client_node = topo.add_node("client");
    for (int i = 0; i < config.servers; ++i) {
      servers.push_back(topo.add_node("server" + std::to_string(i)));
    }
    for (int i = 0; i < config.servers; ++i) {
      topo.connect(client_node, servers[static_cast<std::size_t>(i)],
                   client_latency(i));
    }
    for (int i = 0; i < config.servers; ++i) {
      for (int j = i + 1; j < config.servers; ++j) {
        topo.connect(servers[static_cast<std::size_t>(i)],
                     servers[static_cast<std::size_t>(j)], config.mesh);
      }
    }
    // Direct-only routing keeps the configured latencies authoritative (no
    // surprise relaying through nearer nodes).
    topo.set_routing(Topology::Routing::kDirectOnly);
    if (const std::uint32_t workers = worker_flag(); workers > 0) {
      // Parallel mode (DESIGN.md decision 14): one shard per node, lookahead
      // = the smallest configured link latency, global metrics fronted by
      // per-shard children. Must happen before the RpcNetwork exists — it
      // forks its per-shard RNG lanes at construction.
      const auto nodes = static_cast<std::uint32_t>(topo.node_count());
      sim.configure_shards(nodes, workers, std::min(config.near, config.mesh));
      for (std::uint32_t n = 0; n < nodes; ++n) sim.assign_node_shard(n, n);
      obs::global().enable_sharding(nodes + 1);  // + the serial shard
    }
    net = std::make_unique<RpcNetwork>(sim, topo, Rng{config.seed});
    repo = std::make_unique<Repository>(*net);
    for (const NodeId node : servers) {
      // Home each server's daemons (pull loops, checkpointers) on its shard.
      ShardGuard guard{sim.sharded() ? sim.node_shard(node.raw()) : 0};
      repo->add_server(node, config.server_options);
    }
  }
  ~World() { repo->stop_all_daemons(); }

  [[nodiscard]] Duration client_latency(int server_index) const {
    if (config_.servers <= 1) return config_.near;
    const auto span = config_.far - config_.near;
    return config_.near +
           Duration::nanos(span.count_nanos() * server_index /
                           (config_.servers - 1));
  }

  /// Creates a weak set with `n` objects homed round-robin over the servers.
  CollectionId make_collection(int n_objects, int fragments = 1) {
    std::vector<NodeId> primaries;
    for (int f = 0; f < fragments; ++f) {
      primaries.push_back(servers[static_cast<std::size_t>(f) %
                                  servers.size()]);
    }
    const CollectionId id = repo->create_collection(primaries);
    for (int i = 0; i < n_objects; ++i) {
      const NodeId home =
          servers[static_cast<std::size_t>(i) % servers.size()];
      const ObjectRef ref =
          repo->create_object(home, "object-" + std::to_string(i));
      objects.push_back(ref);
      repo->seed_member(id, ref);
    }
    return id;
  }

  /// Spawns a churn process: adds (and optionally removes) members at the
  /// given mean interval until `until`. Mutations originate at servers[0].
  void spawn_churn(CollectionId id, Duration mean_interval, double remove_bias,
                   SimTime until, std::uint64_t seed) {
    // Churn mutates global state (repo->create_object, the shared objects
    // vector), so it is homed on the serial shard: its events run alone,
    // between parallel windows. In classic mode serial_shard() is 0.
    ShardGuard guard{sim.serial_shard()};
    sim.spawn(churn_process(*this, id, mean_interval, remove_bias, until,
                            seed));
  }

  Simulator sim;
  Topology topo;
  NodeId client_node;
  std::vector<NodeId> servers;
  std::vector<ObjectRef> objects;
  std::unique_ptr<RpcNetwork> net;
  std::unique_ptr<Repository> repo;
  std::uint64_t churn_adds = 0;
  std::uint64_t churn_removes = 0;

 private:
  WorldConfig config_;

  static Task<void> churn_process(World& world, CollectionId id,
                                  Duration mean_interval, double remove_bias,
                                  SimTime until, std::uint64_t seed) {
    Rng rng{seed};
    RepositoryClient mutator{*world.repo, world.servers[0]};
    std::uint64_t next = 1'000'000;  // fresh object ids' payload tag
    while (world.sim.now() < until) {
      co_await world.sim.delay(rng.exponential(mean_interval));
      if (world.sim.now() >= until) co_return;
      if (!world.objects.empty() && rng.bernoulli(remove_bias)) {
        const ObjectRef victim = rng.pick(world.objects);
        const auto removed = co_await mutator.remove(id, victim);
        if (removed && removed.value()) ++world.churn_removes;
      } else {
        const NodeId home = rng.pick(world.servers);
        const ObjectRef ref = world.repo->create_object(
            home, "churn-" + std::to_string(next++));
        world.objects.push_back(ref);
        const auto added = co_await mutator.add(id, ref);
        if (added && added.value()) ++world.churn_adds;
      }
    }
  }
};

}  // namespace weakset::bench
