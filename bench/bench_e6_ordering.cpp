// E6 — the section 1.1 claim: "fetching 'closer' files first" reduces
// perceived latency.
//
// Ablation over the dynamic-set prefetcher: candidate ordering (membership
// order vs closest-first) crossed with prefetch depth, on a directory whose
// files are spread across servers with a steep latency ramp. Reports
// simulated time to the 1st, k/2-th, and last delivered element.
//
// Expected shape: closest-first wins heavily on time-to-first and median at
// low depth; with depth >= number of members the orderings converge (all
// fetches start at once).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "fs/ls.hpp"

namespace weakset::bench {
namespace {

void BM_PrefetchOrdering(benchmark::State& state) {
  const bool closest_first = state.range(0) == 1;
  const int depth = static_cast<int>(state.range(1));
  const int files = 32;
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 8;
    config.near = Duration::millis(1);
    config.far = Duration::millis(200);  // steep ramp
    World world{config};
    DistFileSystem fs{*world.repo};
    const Directory dir = fs.mkdir(world.servers[0]);
    for (int i = 0; i < files; ++i) {
      // Spread so membership order interleaves near and far homes.
      const NodeId home =
          world.servers[static_cast<std::size_t>((i * 5) % 8)];
      fs.create_file(dir, home, "f" + std::to_string(i), "x");
    }
    RepositoryClient client{*world.repo, world.client_node};
    DynSetOptions options;
    options.order =
        closest_first ? PickOrder::kClosestFirst : PickOrder::kGiven;
    options.prefetch_depth = static_cast<std::size_t>(depth);
    const SimTime start = world.sim.now();
    const LsResult result =
        run_task(world.sim, ls_dynamic(client, dir, options));

    const auto at = [&](std::size_t index) {
      return (result.arrival_times().at(index) - start).as_millis();
    };
    state.counters["first_ms"] = at(0);
    state.counters["median_ms"] = at(result.names().size() / 2);
    state.counters["last_ms"] = at(result.names().size() - 1);
    state.counters["entries"] = static_cast<double>(result.names().size());
  }
}
BENCHMARK(BM_PrefetchOrdering)
    ->ArgsProduct({{0, 1}, {1, 4, 32}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
