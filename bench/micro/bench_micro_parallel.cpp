// Parallel-execution microbenchmark (DESIGN.md decision 14): the same
// 8-server fig1/fig6 workload executed by the sharded event loop at 1, 2, 4,
// and 8 workers.
//
// Two claims are measured, with very different gating:
//
//   * Determinism — the folded telemetry export of every worker count is
//     byte-identical to the --workers=1 run. Checked in-process here
//     (`telemetry_mismatch`, gated at 0 in CI) and again across processes by
//     the CI determinism job. `sim_ms` / `ops` are gated at tolerance 0 for
//     the same reason: simulated time must not notice the thread count.
//
//   * Wall-clock speedup — `wall_ms` and `speedup` are *informational*
//     (scripts/metrics_diff.py --informational), like every wall-clock
//     number in this repo: they depend on the machine (CI containers here
//     are single-core, where the worker sweep measures overhead, not
//     speedup; see EXPERIMENTS.md E17 for multi-core numbers and the
//     hardware caveat).
//
// The workload drives parallelism through structure, not through thread
// tricks: four concurrent client drains (fig1 immutable + fig6 optimistic
// rounds) fan out freezes and fetches across all 8 server shards, while a
// churn process on the serial shard mutates membership between windows.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>

#include "../bench_common.hpp"

namespace weakset::bench {
namespace {

constexpr int kDrivers = 4;
constexpr int kRounds = 3;
constexpr int kObjects = 256;
constexpr int kFragments = 8;

Task<void> drive(RepositoryClient* client, CollectionId coll,
                 std::uint64_t* yields, int* done) {
  for (int round = 0; round < kRounds; ++round) {
    {
      RepoSetView view{*client, coll};
      auto iterator = make_elements_iterator(view, Semantics::kFig1Immutable);
      const DrainResult result = co_await drain(*iterator);
      *yields += result.count();
    }
    {
      RepoSetView view{*client, coll};
      auto iterator = make_elements_iterator(view, Semantics::kFig6Optimistic);
      const DrainResult result = co_await drain(*iterator);
      *yields += result.count();
    }
  }
  ++*done;
}

Task<void> join(Simulator* sim, const int* done, int expected) {
  while (*done < expected) co_await sim->delay(Duration::millis(1));
}

// The --workers=1 reference, captured by the first case of the sweep (cases
// run in argument order within one process).
std::string baseline_json;   // NOLINT(runtime/string)
double baseline_wall_ms = 0;

void BM_ParallelSweep(benchmark::State& state) {
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    // Each case re-runs the identical schedule from a clean registry; only
    // the worker count differs. (A CLI --workers flag is ignored here — the
    // sweep *is* the worker axis.)
    obs::global().clear();
    worker_flag() = workers;

    const auto wall0 = std::chrono::steady_clock::now();
    std::uint64_t yields = 0;
    SimTime sim_end = SimTime{};
    {
      WorldConfig config;
      config.servers = 8;
      config.near = Duration::millis(2);
      config.far = Duration::millis(20);
      config.mesh = Duration::millis(10);
      config.seed = 17;
      World world{config};
      const CollectionId coll = world.make_collection(kObjects, kFragments);
      RepositoryClient client{*world.repo, world.client_node};
      world.spawn_churn(coll, Duration::millis(10), 0.3,
                        world.sim.now() + Duration::millis(500), 42);

      int done = 0;
      for (int d = 0; d < kDrivers; ++d) {
        world.sim.spawn(drive(&client, coll, &yields, &done));
      }
      run_task(world.sim, join(&world.sim, &done, kDrivers));
      sim_end = world.sim.now();
      state.counters["churn_ops"] =
          static_cast<double>(world.churn_adds + world.churn_removes);
    }
    const auto wall1 = std::chrono::steady_clock::now();
    worker_flag() = 0;

    const std::string json = obs::global().to_json();
    double mismatch = 0;
    if (workers == 1) {
      baseline_json = json;
    } else {
      mismatch = json == baseline_json ? 0 : 1;
    }

    const auto wall_elapsed =
        std::chrono::duration_cast<std::chrono::nanoseconds>(wall1 - wall0);
    const double wall_ms = static_cast<double>(wall_elapsed.count()) / 1e6;
    if (workers == 1) baseline_wall_ms = wall_ms;

    state.counters["workers"] = workers;
    state.counters["telemetry_mismatch"] = mismatch;
    state.counters["sim_ms"] = sim_end.as_millis();
    state.counters["ops"] = static_cast<double>(yields);
    state.counters["wall_ms"] = wall_ms;
    state.counters["speedup"] =
        wall_ms > 0 ? baseline_wall_ms / wall_ms : 0;
  }
}
BENCHMARK(BM_ParallelSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
