// Wall-clock microbenchmarks of the simulator/RPC hot path (ROADMAP item 4:
// wall-clock ns/event is what caps scenario size — sim-time is cost-model
// fiction).
//
// Unlike the experiment benches (bench_e*), the numbers here are REAL time:
// ns per simulator event, ns per RPC dispatch, ns per cancelled timer, and —
// the deterministic part — allocations per operation, counted by the global
// operator-new hook in util/alloc_hook.hpp. CI gates only on the
// `allocs_per_*` counters (deterministic for a fixed toolchain); the
// `wall_ns_*` counters are informational (scripts/metrics_diff.py
// --informational), reported so regressions are visible without making the
// gate flaky on loaded machines.
//
// Every benchmark pins Iterations(1) and loops a fixed operation count
// internally, with a warmup phase first so one-time allocations (vector
// capacities, metric-name interning, the span-retention cap) don't pollute
// the steady-state counts.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "net/rpc.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "store/client.hpp"
#include "store/repository.hpp"
#include "util/alloc_hook.hpp"
#include "util/rng.hpp"

namespace {

using namespace weakset;

constexpr std::uint64_t kWarmupEvents = 4'096;
constexpr std::uint64_t kEvents = 262'144;
constexpr std::uint64_t kWarmupTimers = 4'096;
constexpr std::uint64_t kTimers = 131'072;
// Warmup must exceed the span-retention cap (256 completed spans) so the
// registry's span storage is quiescent during the measured phase.
constexpr std::uint64_t kWarmupRpcs = 768;
constexpr std::uint64_t kRpcs = 16'384;
constexpr std::uint64_t kWarmupReads = 64;
constexpr std::uint64_t kReads = 1'024;

struct Measured {
  std::uint64_t allocs;
  double wall_ns;
};

template <typename Body>
Measured measure(Body&& body) {
  const std::uint64_t allocs0 = alloc_hook::news();
  const auto t0 = std::chrono::steady_clock::now();
  body();
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t allocs1 = alloc_hook::news();
  return Measured{
      allocs1 - allocs0,
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count())};
}

void report(benchmark::State& state, const char* op, Measured m,
            double ops) {
  state.counters[std::string("allocs_per_") + op] =
      static_cast<double>(m.allocs) / ops;
  state.counters[std::string("wall_ns_per_") + op] = m.wall_ns / ops;
  state.counters["ops"] = ops;
}

// -- ns/event: a self-rescheduling timer chain ------------------------------

void ping_chain(Simulator& sim, std::uint64_t* left) {
  if ((*left)-- == 0) return;
  sim.schedule(Duration::micros(1), [&sim, left] { ping_chain(sim, left); });
}

void run_ping(Simulator& sim, std::uint64_t n) {
  std::uint64_t left = n;
  ping_chain(sim, &left);
  sim.run();
}

void micro_event_loop(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    run_ping(sim, kWarmupEvents);
    const std::uint64_t before = sim.events_processed();
    const Measured m = measure([&] { run_ping(sim, kEvents); });
    const auto ops = static_cast<double>(sim.events_processed() - before);
    report(state, "event", m, ops);
  }
}
BENCHMARK(micro_event_loop)->Iterations(1)->Unit(benchmark::kMillisecond);

// -- ns/timer: schedule_cancellable + immediate cancel churn ----------------
// Models the RPC timeout pattern: every call arms a timer that is almost
// always cancelled by the reply.

void timer_chain(Simulator& sim, std::uint64_t* left) {
  if ((*left)-- == 0) return;
  const auto token = sim.schedule_cancellable(Duration::micros(1), [] {});
  token.cancel();
  sim.schedule(Duration::micros(2), [&sim, left] { timer_chain(sim, left); });
}

void run_timers(Simulator& sim, std::uint64_t n) {
  std::uint64_t left = n;
  timer_chain(sim, &left);
  sim.run();
}

void micro_timer_cancel(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    run_timers(sim, kWarmupTimers);
    const Measured m = measure([&] { run_timers(sim, kTimers); });
    report(state, "timer", m, static_cast<double>(kTimers));
  }
}
BENCHMARK(micro_timer_cancel)->Iterations(1)->Unit(benchmark::kMillisecond);

// -- ns/RPC: a two-node echo loop over the full dispatch path ---------------

struct EchoMsg {
  explicit EchoMsg(std::uint64_t v = 0) : value(v) {}
  std::uint64_t value;
};

Task<Result<Payload>> echo_handler(NodeId, Payload request) {
  co_return Payload{payload_cast<EchoMsg>(std::move(request))};
}

Task<void> rpc_loop(RpcNetwork* net, NodeId from, NodeId to, std::uint64_t n,
                    std::uint64_t* acc) {
  for (std::uint64_t i = 0; i < n; ++i) {
    Result<EchoMsg> reply =
        co_await net->call_typed<EchoMsg>(from, to, "micro.echo", EchoMsg{i});
    if (reply) *acc += reply.value().value;
  }
}

void micro_rpc_dispatch(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Topology topo;
    const NodeId client = topo.add_node("client");
    const NodeId server = topo.add_node("server");
    topo.connect(client, server, Duration::millis(1));
    obs::MetricsRegistry local;  // keep the process-global registry clean
    RpcOptions options;
    options.metrics = &local;
    RpcNetwork net{sim, topo, Rng{42}, options};
    net.register_handler(server, "micro.echo", &echo_handler);

    std::uint64_t acc = 0;
    run_task(sim, rpc_loop(&net, client, server, kWarmupRpcs, &acc));
    const Measured m = measure([&] {
      run_task(sim, rpc_loop(&net, client, server, kRpcs, &acc));
    });
    benchmark::DoNotOptimize(acc);
    report(state, "rpc", m, static_cast<double>(kRpcs));
  }
}
BENCHMARK(micro_rpc_dispatch)->Iterations(1)->Unit(benchmark::kMillisecond);

// -- ns/read: store-level read_all over the delta path ----------------------
// Exercises the message/buffer machinery (snapshot + delta replies, member
// lists, fragment cache) rather than raw dispatch: the steady state is an
// unchanged collection served entirely as empty deltas.

Task<void> read_loop(RepositoryClient* client, CollectionId id,
                     std::uint64_t n, std::uint64_t* acc) {
  for (std::uint64_t i = 0; i < n; ++i) {
    auto reply = co_await client->read_all(id);
    if (reply) *acc += reply.value().size();
  }
}

void micro_read_all_delta(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Topology topo;
    const NodeId client_node = topo.add_node("client");
    const NodeId s0 = topo.add_node("server0");
    const NodeId s1 = topo.add_node("server1");
    topo.connect(client_node, s0, Duration::millis(1));
    topo.connect(client_node, s1, Duration::millis(1));
    topo.connect(s0, s1, Duration::millis(1));
    topo.set_routing(Topology::Routing::kDirectOnly);
    obs::MetricsRegistry local;
    RpcOptions rpc_options;
    rpc_options.metrics = &local;
    RpcNetwork net{sim, topo, Rng{7}, rpc_options};
    Repository repo{net};
    StoreServerOptions server_options;
    server_options.metrics = &local;
    // Quiesce the daemons: this bench measures the read path, not
    // anti-entropy or checkpointing.
    server_options.pull_interval = Duration::seconds(1'000'000);
    server_options.durability.enabled = false;
    repo.add_server(s0, server_options);
    repo.add_server(s1, server_options);

    const CollectionId id = repo.create_collection({s0, s1});
    for (int i = 0; i < 64; ++i) {
      const ObjectRef ref = repo.create_object(
          i % 2 == 0 ? s0 : s1, "object-" + std::to_string(i));
      repo.seed_member(id, ref);
    }

    ClientOptions client_options;
    client_options.metrics = &local;
    RepositoryClient reader{repo, client_node, client_options};
    std::uint64_t acc = 0;
    run_task(sim, read_loop(&reader, id, kWarmupReads, &acc));
    const Measured m = measure([&] {
      run_task(sim, read_loop(&reader, id, kReads, &acc));
    });
    benchmark::DoNotOptimize(acc);
    report(state, "read", m, static_cast<double>(kReads));
    repo.stop_all_daemons();
  }
}
BENCHMARK(micro_read_all_delta)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

// Same --metrics-out handling as the experiment benches (the flag must be
// stripped before google-benchmark parses argv), without pulling in the full
// bench_common world-builder stack.
int main(int argc, char** argv) {
  const std::optional<std::string> metrics_out =
      weakset::obs::extract_metrics_out(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (metrics_out &&
      !weakset::obs::global().write_json_file(*metrics_out)) {
    return 1;
  }
  return 0;
}
