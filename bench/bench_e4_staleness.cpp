// E4 — consistency vs currency (the Garcia-Molina/Wiederhold taxonomy the
// paper maps itself onto in section 4): quantify how stale replica reads
// erode even the weakest guarantee.
//
// The client reads membership from a NEARBY REPLICA that lags the primary
// by the anti-entropy pull interval, while churn mutates the primary. The
// optimistic iterator runs over the stale view; the spec layer counts
// Figure 6 window violations (yields of elements that were not members at
// any state during the run) against ground truth.
//
// Expected shape: violations and ghost yields grow with the pull interval
// (staleness) and with the churn rate; with a fresh primary read
// (interval → 0) they vanish.

#include <benchmark/benchmark.h>

#include <set>

#include "bench_common.hpp"

namespace weakset::bench {
namespace {

void BM_StalenessErosion(benchmark::State& state) {
  const int pull_ms = static_cast<int>(state.range(0));
  const int churn_ms = static_cast<int>(state.range(1));
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 3;
    config.near = Duration::millis(2);
    config.far = Duration::millis(120);
    config.server_options.pull_interval = Duration::millis(pull_ms);
    World world{config};
    // Collection primary on the FAR server (servers[2]); replica NEAR
    // (servers[0]); the nearest-read client will use the replica.
    const CollectionId coll =
        world.repo->create_collection({world.servers[2]});
    for (int i = 0; i < 24; ++i) {
      const ObjectRef ref = world.repo->create_object(
          world.servers[static_cast<std::size_t>(i % 2)],
          "obj" + std::to_string(i));
      world.objects.push_back(ref);
      world.repo->seed_member(coll, ref);
    }
    world.repo->add_replica(coll, 0, world.servers[0]);
    // Let the replica converge on the initial membership.
    world.sim.run_until(world.sim.now() + Duration::millis(4 * pull_ms + 50));

    spec::TimelineProbe probe{*world.repo, coll};
    world.spawn_churn(coll, Duration::millis(churn_ms),
                      /*remove_bias=*/0.5,
                      world.sim.now() + Duration::seconds(2),
                      config.seed ^ 0xe4);

    RepositoryClient client{*world.repo, world.client_node};  // kNearest
    WeakSet set{client, coll};
    spec::RepoGroundTruth truth{*world.repo, coll, world.client_node};
    spec::TraceRecorder recorder{truth};
    IteratorOptions options;
    options.recorder = &recorder;
    options.retry = RetryPolicy{20, Duration::millis(100)};
    auto iterator = set.elements(Semantics::kFig6Optimistic, options);
    const DrainResult result = run_task(world.sim, drain(*iterator));

    const auto trace = recorder.finish();
    const auto report = spec::check_fig6(trace, probe.timeline());
    // Ghost yields: delivered elements that are not members at the end.
    const auto final_value = probe.timeline().value_at(trace.last_time());
    std::size_t ghosts = 0;
    for (const auto& [r, v] : result.elements()) {
      if (final_value.count(r) == 0) ++ghosts;
    }

    state.counters["yields"] = static_cast<double>(result.count());
    state.counters["fig6_violations"] =
        static_cast<double>(report.violation_count());
    state.counters["ghost_yields"] = static_cast<double>(ghosts);
  }
}
BENCHMARK(BM_StalenessErosion)
    ->ArgsProduct({{20, 200, 1000}, {10, 40}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
