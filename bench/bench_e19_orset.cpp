// E19 — multi-master availability: OR-Set replication (src/crdt, DESIGN.md
// decision 16) against home-primary replication on the identical placement,
// as partitions and replica counts sweep.
//
// One scenario per cell: one fragment anchored on server0 with R-1 replica
// hosts, 32 seeded members, then a 2-second open write window (adds with a
// 30% remove bias every 4ms) from a single client. Partition episodes cut
// the anchor away from {client, replicas} for 300ms each; home-primary mode
// must route every write to the unreachable anchor, OR-Set accepts it at the
// nearest host that still answers and repairs by anti-entropy after heal.
//
// Reported per row:
//   availability  — acked / attempted writes (the headline: home-primary
//                   availability drops with each episode, OR-Set stays 1.0)
//   staleness_ms  — last heal -> all hosts agree (the anti-entropy window;
//                   OR-Set convergence is spec::check_converged, home mode
//                   is replica catch-up to the primary)
//   merge_ops     — remote dot ops applied by pulls + pushes (OR-Set) or
//                   replica pull ops applied (home): the repair bill
//   snapshot_joins / failovers — full-state joins forced by cursor expiry,
//                   and writes that needed a non-nearest host
//
// All quantities are simulated time and deterministic: same binary, same
// seed, any --workers count — byte-identical metrics export (the CI gate
// cmp's a double run and a workers=1 vs workers=4 pair).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace weakset::bench {
namespace {

constexpr int kSeedMembers = 32;
constexpr Duration kWriteInterval = Duration::millis(4);
constexpr Duration kEpisodeLength = Duration::millis(300);

/// Like bench_common::World, but the collection mode and the per-row
/// metrics sink are part of the build (row-local percentiles and counter
/// deltas must not accumulate across sweep rows the way obs::global()
/// would).
struct OrSetWorld {
  OrSetWorld(int n_servers, std::uint64_t seed) {
    client_node = topo.add_node("client");
    for (int i = 0; i < n_servers; ++i) {
      servers.push_back(topo.add_node("server" + std::to_string(i)));
    }
    for (int i = 0; i < n_servers; ++i) {
      topo.connect(client_node, servers[static_cast<std::size_t>(i)],
                   Duration::millis(2 + 3 * i));
    }
    for (int i = 0; i < n_servers; ++i) {
      for (int j = i + 1; j < n_servers; ++j) {
        topo.connect(servers[static_cast<std::size_t>(i)],
                     servers[static_cast<std::size_t>(j)],
                     Duration::millis(10));
      }
    }
    topo.set_routing(Topology::Routing::kDirectOnly);
    if (const std::uint32_t workers = worker_flag(); workers > 0) {
      const auto nodes = static_cast<std::uint32_t>(topo.node_count());
      sim.configure_shards(nodes, workers, Duration::millis(2));
      for (std::uint32_t n = 0; n < nodes; ++n) sim.assign_node_shard(n, n);
      obs::global().enable_sharding(nodes + 1);  // + the serial shard
      metrics.enable_sharding(nodes + 1);
    }
    net = std::make_unique<RpcNetwork>(sim, topo, Rng{seed});
    repo = std::make_unique<Repository>(*net);
    StoreServerOptions options;
    options.pull_interval = Duration::millis(20);
    options.metrics = &metrics;
    for (const NodeId node : servers) {
      ShardGuard guard{sim.sharded() ? sim.node_shard(node.raw()) : 0};
      repo->add_server(node, options);
    }
  }
  ~OrSetWorld() { repo->stop_all_daemons(); }

  Simulator sim;
  Topology topo;
  obs::MetricsRegistry metrics;
  NodeId client_node;
  std::vector<NodeId> servers;
  std::unique_ptr<RpcNetwork> net;
  std::unique_ptr<Repository> repo;
};

struct WriteCounts {
  std::uint64_t attempts = 0;
  std::uint64_t acks = 0;
};

/// Open-loop writer: one membership mutation per tick until `until`.
/// Creates objects (global repo state), so it runs on the serial shard.
Task<void> write_process(OrSetWorld& world, CollectionId coll,
                         std::vector<ObjectRef>& members, SimTime until,
                         std::uint64_t seed, WriteCounts& counts) {
  Rng rng{seed};
  // Bounded RPC timeout: a write in flight when a partition cuts its link
  // is dropped on the wire — the default 2s timeout would stall the
  // closed-loop writer for most of an episode.
  RepositoryClient client{*world.repo, world.client_node,
                          [&world] {
                            ClientOptions o;
                            o.metrics = &world.metrics;
                            o.rpc_timeout = Duration::millis(50);
                            return o;
                          }()};
  std::uint64_t next = 1'000'000;
  while (world.sim.now() < until) {
    co_await world.sim.delay(kWriteInterval);
    if (world.sim.now() >= until) co_return;
    ++counts.attempts;
    if (!members.empty() && rng.bernoulli(0.3)) {
      const ObjectRef victim = rng.pick(members);
      const auto removed = co_await client.remove(coll, victim);
      if (removed.has_value()) ++counts.acks;
    } else {
      const NodeId home = rng.pick(world.servers);
      const ObjectRef ref =
          world.repo->create_object(home, "w-" + std::to_string(next++));
      members.push_back(ref);
      const auto added = co_await client.add(coll, ref);
      if (added.has_value()) ++counts.acks;
    }
  }
}

/// All hosts of the fragment agree on the member sequence. For OR-Set that
/// is the convergence spec; for home-primary it is replica catch-up.
bool hosts_agree(OrSetWorld& world, CollectionId coll, ReplicationMode mode) {
  if (mode == ReplicationMode::kOrSet) {
    return spec::check_converged(
               spec::orset_fragment_members(*world.repo, coll, 0))
        .satisfied();
  }
  std::vector<ObjectRef> primary =
      world.repo->server_at(world.servers[0])->collection(coll)->members();
  std::sort(primary.begin(), primary.end());
  for (std::size_t i = 1; i < world.servers.size(); ++i) {
    std::vector<ObjectRef> replica =
        world.repo->server_at(world.servers[i])->collection(coll)->members();
    std::sort(replica.begin(), replica.end());
    if (replica != primary) return false;
  }
  return true;
}

void BM_OrSetAvailability(benchmark::State& state) {
  const ReplicationMode mode = state.range(0) == 1 ? ReplicationMode::kOrSet
                                                   : ReplicationMode::kHomePrimary;
  const char* mode_name = state.range(0) == 1 ? "orset" : "home-primary";
  const auto replicas = static_cast<int>(state.range(1));
  const auto episodes = static_cast<int>(state.range(2));

  for (auto _ : state) {
    OrSetWorld world{replicas, /*seed=*/0xe19};
    const CollectionId coll =
        world.repo->create_collection({world.servers[0]}, mode);
    for (std::size_t i = 1; i < world.servers.size(); ++i) {
      world.repo->add_replica(coll, 0, world.servers[i]);
    }
    std::vector<ObjectRef> members;
    for (int i = 0; i < kSeedMembers; ++i) {
      const NodeId home =
          world.servers[static_cast<std::size_t>(i) % world.servers.size()];
      const ObjectRef ref =
          world.repo->create_object(home, "seed-" + std::to_string(i));
      members.push_back(ref);
      if (mode == ReplicationMode::kOrSet) {
        world.repo->server_at(world.servers[0])
            ->seed_orset_member(coll, ref);
      } else {
        world.repo->seed_member(coll, ref);
      }
    }
    // Replicas/peers absorb the seeds before the write window opens.
    world.sim.run_until(SimTime{} + Duration::millis(200));

    // Partition episodes: the anchor alone on one side, the client and
    // every replica host on the other. Evenly spaced inside the window.
    // partition()/heal() mutate global topology state, so the episode
    // events are homed on the serial shard: they run alone, with every
    // worker quiesced, never inside a parallel window.
    ShardGuard episode_guard{world.sim.serial_shard()};
    SimTime last_heal = world.sim.now();
    for (int e = 0; e < episodes; ++e) {
      const Duration start = Duration::millis(400 + 700 * e);
      const SimTime heal_at = SimTime{} + start + kEpisodeLength;
      world.sim.schedule(start - (world.sim.now() - SimTime{}),
                         [&world] {
                           std::vector<NodeId> rest{world.client_node};
                           rest.insert(rest.end(),
                                       world.servers.begin() + 1,
                                       world.servers.end());
                           world.topo.partition(
                               {{world.servers[0]}, rest});
                         });
      world.sim.schedule(heal_at - world.sim.now(),
                         [&world] { world.topo.heal(); });
      if (heal_at > last_heal) last_heal = heal_at;
    }

    const std::uint64_t pull_ops_before =
        world.metrics.counter("store.orset.pull_ops_applied") +
        world.metrics.counter("store.replica.pull_ops_applied");
    const std::uint64_t push_ops_before =
        world.metrics.counter("store.orset.push_ops_applied") +
        world.metrics.counter("store.replica.push_ops_applied");
    const std::uint64_t joins_before =
        world.metrics.counter("store.orset.snapshot_joins") +
        world.metrics.counter("store.replica.snapshot_installs");

    WriteCounts counts;
    const SimTime write_end = SimTime{} + Duration::millis(2200);
    {
      ShardGuard guard{world.sim.serial_shard()};
      world.sim.spawn(write_process(world, coll, members, write_end,
                                    /*seed=*/0x5eed, counts));
    }
    world.sim.run_until(write_end);
    if (world.sim.now() > last_heal) last_heal = world.sim.now();

    // Staleness window: last heal (or end of writes) -> every host agrees.
    const Duration limit = Duration::seconds(5);
    while (!hosts_agree(world, coll, mode) &&
           world.sim.now() - last_heal < limit) {
      world.sim.run_until(world.sim.now() + Duration::millis(1));
    }
    const Duration staleness = world.sim.now() - last_heal;
    const bool converged = hosts_agree(world, coll, mode);

    const double merge_ops = static_cast<double>(
        world.metrics.counter("store.orset.pull_ops_applied") +
        world.metrics.counter("store.replica.pull_ops_applied") -
        pull_ops_before +
        world.metrics.counter("store.orset.push_ops_applied") +
        world.metrics.counter("store.replica.push_ops_applied") -
        push_ops_before);
    const double joins = static_cast<double>(
        world.metrics.counter("store.orset.snapshot_joins") +
        world.metrics.counter("store.replica.snapshot_installs") -
        joins_before);

    state.counters["attempts"] = static_cast<double>(counts.attempts);
    state.counters["acks"] = static_cast<double>(counts.acks);
    state.counters["availability"] =
        counts.attempts == 0
            ? 0.0
            : static_cast<double>(counts.acks) /
                  static_cast<double>(counts.attempts);
    state.counters["staleness_ms"] =
        static_cast<double>(staleness.count_nanos()) / 1e6;
    state.counters["converged"] = converged ? 1.0 : 0.0;
    state.counters["merge_ops"] = merge_ops;
    state.counters["snapshot_joins"] = joins;
    state.counters["failovers"] = static_cast<double>(
        world.metrics.counter("store.client.orset_write_failovers"));

    // Mirror the row's aggregates into the process-global registry (the
    // --metrics-out export): that is what the CI determinism cmp reads, so
    // the whole sweep's outcome is part of the byte-identical contract.
    const std::string prefix = "e19." + std::string{mode_name} + ".r" +
                               std::to_string(replicas) + ".p" +
                               std::to_string(episodes) + ".";
    obs::MetricsRegistry& global = obs::global();
    global.add(prefix + "attempts", counts.attempts);
    global.add(prefix + "acks", counts.acks);
    global.add(prefix + "staleness_us",
               static_cast<std::uint64_t>(staleness.count_nanos() / 1000));
    global.add(prefix + "merge_ops",
               static_cast<std::uint64_t>(merge_ops));
    global.add(prefix + "converged", converged ? 1 : 0);

    state.SetLabel(std::string{mode_name});
  }
}
// mode (0 = home-primary, 1 = OR-Set) x replica count x partition episodes.
BENCHMARK(BM_OrSetAvailability)
    ->ArgsProduct({{0, 1}, {2, 3, 5}, {0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
