// FIG4 — Figure 4: mutable set with loss of mutations (snapshot semantics).
//
// A churn process mutates the set while the snapshot iterator runs. Sweeps
// the mean mutation interval. Counters report the cost of the atomic
// snapshot (the paper: "distributed atomic actions are extremely expensive
// in practice"), how many concurrent additions the snapshot missed ("the
// iterator may miss elements added to s after the first invocation"), and
// ghost yields (elements yielded although already removed).
//
// Expected shape: snapshot cost grows with fragment count; missed adds grow
// as the mutation interval shrinks; zero Figure 4 spec violations
// regardless of churn.

#include <benchmark/benchmark.h>

#include <set>

#include "bench_common.hpp"

namespace weakset::bench {
namespace {

void BM_Fig4UnderChurn(benchmark::State& state) {
  const int n = 48;
  const int fragments = static_cast<int>(state.range(0));
  const int interval_ms = static_cast<int>(state.range(1));
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 4;
    World world{config};
    const CollectionId coll = world.make_collection(n, fragments);
    RepositoryClient client{*world.repo, world.client_node};
    WeakSet set{client, coll};
    spec::TimelineProbe probe{*world.repo, coll};

    world.spawn_churn(coll, Duration::millis(interval_ms),
                      /*remove_bias=*/0.3,
                      world.sim.now() + Duration::seconds(60),
                      config.seed ^ 0x5eed);

    spec::RepoGroundTruth truth{*world.repo, coll, world.client_node};
    spec::TraceRecorder recorder{truth};
    IteratorOptions options;
    options.recorder = &recorder;
    auto iterator = set.elements(Semantics::kFig4Snapshot, options);

    const SimTime start = world.sim.now();
    SimTime snapshot_done = start;
    std::size_t count = 0;
    const DrainResult result = run_task(
        world.sim,
        [](Simulator& sim, ElementsIterator& it, SimTime& snap,
           std::size_t& yields) -> Task<DrainResult> {
          DrainResult out;
          for (;;) {
            Step step = co_await it.next();
            if (yields == 0) snap = sim.now();  // first invocation done
            if (step.is_yield()) {
              ++yields;
              out.add(step.ref(), step.value());
              continue;
            }
            if (step.is_finished()) out.set_finished();
            if (step.is_failure()) out.set_failure(step.failure());
            co_return out;
          }
        }(world.sim, *iterator, snapshot_done, count));
    const SimTime done = world.sim.now();

    const auto trace = recorder.finish();
    // Missed adds: elements added during the run window that were never
    // yielded (the snapshot can't see them).
    std::set<ObjectRef> yielded;
    for (const auto& [r, v] : result.elements()) yielded.insert(r);
    std::size_t missed_adds = 0;
    std::size_t ghost_yields = 0;
    for (const auto& event : probe.timeline().events()) {
      if (event.at() <= trace.first_time() || event.at() > done) continue;
      if (event.kind() == CollectionOp::Kind::kAdd &&
          yielded.count(event.ref()) == 0) {
        ++missed_adds;
      }
      if (event.kind() == CollectionOp::Kind::kRemove &&
          yielded.count(event.ref()) > 0) {
        ++ghost_yields;  // removed during the run yet (to be) yielded
      }
    }

    state.counters["snapshot_ms"] = (snapshot_done - start).as_millis();
    state.counters["total_ms"] = (done - start).as_millis();
    state.counters["yields"] = static_cast<double>(result.count());
    state.counters["missed_adds"] = static_cast<double>(missed_adds);
    state.counters["ghost_yields"] = static_cast<double>(ghost_yields);
    state.counters["fig4_violations"] =
        static_cast<double>(spec::check_fig4(trace).violation_count());
  }
}
BENCHMARK(BM_Fig4UnderChurn)
    ->ArgsProduct({{1, 2, 4}, {5, 20, 80}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
