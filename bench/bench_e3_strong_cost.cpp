// E3 — the section 3.1/3.2 cost claims: "preventing mutation requires
// distributed locking; allowing only growth requires the ability either to
// prevent certain mutations or to cache the entire set" and "distributed
// atomic actions are extremely expensive in practice".
//
// M concurrent mutator processes hammer the set while one reader iterates
// under (a) Figure 3 with the freeze lock enforced, (b) Figure 4 (atomic
// snapshot), (c) Figure 6 (optimistic, no exclusion). Reports the reader's
// completion time and the mutators' throughput during the run.
//
// Expected shape: freeze blocks every mutation for the whole run (mutator
// ops/s collapses as reader time grows); the snapshot blocks mutators only
// during the cut (brief dip); optimistic leaves mutators untouched and the
// reader is fastest.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace weakset::bench {
namespace {

struct MutatorCounters {
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
};

Task<void> mutator_process(World& world, CollectionId coll,
                           MutatorCounters& counters, std::uint64_t seed,
                           const bool& stop) {
  Rng rng{seed};
  RepositoryClient client{*world.repo, world.servers[1]};
  while (!stop) {
    co_await world.sim.delay(rng.exponential(Duration::millis(20)));
    if (stop) co_return;
    const ObjectRef target = rng.pick(world.objects);
    // Toggle membership: remove if present else add; either way it is one
    // membership RPC against the responsible fragment primary. (Plain
    // if/else: GCC 12 miscompiles co_await inside ?:, see DESIGN.md 6.)
    Result<bool> result{false};
    if (rng.bernoulli(0.5)) {
      result = co_await client.add(coll, target);
    } else {
      result = co_await client.remove(coll, target);
    }
    if (result) {
      ++counters.completed;
    } else {
      ++counters.failed;
    }
  }
}

void BM_StrongSemanticsCost(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));  // 0 freeze 1 snap 2 opt
  const int mutators = static_cast<int>(state.range(1));
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 4;
    World world{config};
    const CollectionId coll = world.make_collection(24, /*fragments=*/2);
    RepositoryClient client{*world.repo, world.client_node};
    WeakSet set{client, coll};

    MutatorCounters counters;
    bool stop = false;
    for (int m = 0; m < mutators; ++m) {
      world.sim.spawn(mutator_process(world, coll, counters,
                                      50 + static_cast<std::uint64_t>(m),
                                      stop));
    }

    Semantics semantics = Semantics::kFig6Optimistic;
    IteratorOptions options;
    if (mode == 0) {
      semantics = Semantics::kFig3ImmutableFailAware;
      options.enforce_freeze = true;
    } else if (mode == 1) {
      semantics = Semantics::kFig4Snapshot;
    }
    options.retry = RetryPolicy{20, Duration::millis(100)};

    auto iterator = set.elements(semantics, options);
    const SimTime start = world.sim.now();
    const DrainResult result = run_task(world.sim, drain(*iterator));
    const Duration reader_time = world.sim.now() - start;
    stop = true;
    // Let in-flight mutations settle so counters are comparable.
    world.sim.run_until(world.sim.now() + Duration::seconds(3));

    state.counters["reader_ms"] = reader_time.as_millis();
    state.counters["yields"] = static_cast<double>(result.count());
    state.counters["reader_ok"] = result.finished() ? 1 : 0;
    state.counters["mut_ops"] = static_cast<double>(counters.completed);
    state.counters["mut_failed"] = static_cast<double>(counters.failed);
    state.counters["mut_ops_per_s"] =
        reader_time.as_seconds() > 0
            ? static_cast<double>(counters.completed) /
                  reader_time.as_seconds()
            : 0;
  }
}
BENCHMARK(BM_StrongSemanticsCost)
    ->ArgsProduct({{0, 1, 2}, {1, 4, 16}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
