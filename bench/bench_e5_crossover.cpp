// E5 — the section 3 guidance: pessimistic handling "is an appropriate
// choice" only "in an environment in which mutation and failures are rare".
// Where is the crossover?
//
// Member-holding servers flap (independent transient outages with mean
// uptime U and fixed outage duration). Two strategies race to retrieve the
// FULL set:
//   pessimistic    Figure 3; on failure, back off 200ms and restart the
//                  whole query from scratch (re-fetching everything)
//   optimistic     Figure 6 with forever-retry (partial progress is kept;
//                  blocked elements are awaited)
// Reports mean completion time and RPC count over seeds, per flap rate.
//
// Expected shape: with no failures the two are equal (pessimism costs
// nothing); as flapping increases, pessimistic restarts compound (wasted
// re-fetches, sometimes repeated failures) while optimistic time grows only
// by the waited-out outages — the curves cross early and diverge.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace weakset::bench {
namespace {

constexpr int kObjects = 24;
constexpr int kTrials = 10;

Task<void> flapper(World& world, NodeId node, Duration mean_up,
                   Duration outage, std::uint64_t seed, const bool& stop) {
  Rng rng{seed};
  for (;;) {
    co_await world.sim.delay(rng.exponential(mean_up));
    if (stop) co_return;
    world.topo.crash(node);
    co_await world.sim.delay(outage);
    world.topo.restart(node);
    if (stop) co_return;
  }
}

struct TrialResult {
  TrialResult(Duration time, std::uint64_t rpcs, int restarts)
      : time(time), rpcs(rpcs), restarts(restarts) {}
  Duration time;
  std::uint64_t rpcs;
  int restarts;
};

Task<TrialResult> pessimistic_until_complete(World& world, WeakSet& set) {
  const SimTime start = world.sim.now();
  int restarts = 0;
  for (;;) {
    auto iterator = set.elements(Semantics::kFig3ImmutableFailAware);
    const DrainResult result = co_await drain(*iterator);
    if (result.finished()) {
      co_return TrialResult{world.sim.now() - start,
                            world.net->stats().calls, restarts};
    }
    ++restarts;
    co_await world.sim.delay(Duration::millis(200));
  }
}

Task<TrialResult> optimistic_until_complete(World& world, WeakSet& set) {
  const SimTime start = world.sim.now();
  IteratorOptions options;
  options.retry = RetryPolicy::forever(Duration::millis(200));
  auto iterator = set.elements(Semantics::kFig6Optimistic, options);
  const DrainResult result = co_await drain(*iterator);
  (void)result;
  co_return TrialResult{world.sim.now() - start, world.net->stats().calls, 0};
}

void BM_Crossover(benchmark::State& state) {
  const bool optimistic = state.range(0) == 1;
  const int mean_up_ms = static_cast<int>(state.range(1));  // 0 = no flapping
  for (auto _ : state) {
    double total_ms = 0;
    double total_rpcs = 0;
    double total_restarts = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      WorldConfig config;
      config.servers = 4;
      config.seed = 300 + static_cast<std::uint64_t>(trial);
      World world{config};
      const CollectionId coll = world.make_collection(kObjects);
      RepositoryClient client{*world.repo, world.client_node};
      WeakSet set{client, coll};

      bool stop = false;
      if (mean_up_ms > 0) {
        // The collection primary stays up; member homes flap.
        for (std::size_t i = 1; i < world.servers.size(); ++i) {
          world.sim.spawn(flapper(world, world.servers[i],
                                  Duration::millis(mean_up_ms),
                                  Duration::millis(400),
                                  config.seed ^ (0xf1a0 + i), stop));
        }
      }

      const TrialResult result = run_task(
          world.sim, optimistic ? optimistic_until_complete(world, set)
                                : pessimistic_until_complete(world, set));
      stop = true;
      total_ms += result.time.as_millis();
      total_rpcs += static_cast<double>(result.rpcs);
      total_restarts += result.restarts;
    }
    state.counters["mean_ms"] = total_ms / kTrials;
    state.counters["mean_rpcs"] = total_rpcs / kTrials;
    state.counters["mean_restarts"] = total_restarts / kTrials;
  }
}
BENCHMARK(BM_Crossover)
    ->ArgsProduct({{0, 1}, {0, 8000, 3000, 1200}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
