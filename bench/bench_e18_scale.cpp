// E18 — population scale: a hundred thousand client sessions against a
// four-server repository, with and without admission control (DESIGN.md
// decision 15).
//
// The load engine (src/load) spawns open-loop sessions — Poisson arrivals
// over a fixed window, Zipfian collection popularity inside per-tenant
// namespaces, an insert/remove/iterate op mix — multiplexed over four
// gateway nodes, so 100k sessions cost 100k coroutines, not 100k topology
// nodes. The arrival window is fixed while the session count sweeps
// 1k -> 100k, so offered load scales with the row: the 1k row idles below
// server capacity and the 100k row offers a sustained multiple of it.
//
// Swept against three admission policies:
//
//   unbounded   — the historical serve-everything model: every request
//                 queues until a service slot frees. Under overload the
//                 queue (and queue wait) grows without bound until client
//                 RPC timeouts become the only back-pressure.
//   reject      — bounded per-tenant queues, tail drop: arrivals beyond the
//                 bound get an explicit kOverloaded rejection immediately.
//   shed-oldest — bounded queues, head drop: the arrival displaces the
//                 longest-waiting request (most likely already abandoned by
//                 its caller).
//
// Reported per row: offered/goodput rates (simulated ops/s), op latency
// p50/p95/p99, shed and admitted counts, and the maximum per-tenant queue
// depth. Expected shape: goodput saturates at capacity while offered load
// keeps climbing; the bounded policies hold p99 and queue depth flat where
// unbounded lets both collapse toward the RPC timeout.
//
// All quantities are simulated time and deterministic: same binary, same
// seed, any --workers count — byte-identical metrics export (the CI gate
// cmp's a double run and a workers=1 vs workers=4 pair).
//
// --rebalance variant: sessions resolve placement through the directory
// service (one DirectoryClient per gateway) and a least-loaded rebalancer
// feeds on the demand windows this very workload generates — every tenant's
// most popular collection lands on server 0 at build time (base % servers ==
// rank), so the Zipfian traffic makes server 0 the hotspot and the policy
// has real moves to find. Rows are labelled "<policy>+rebalance" and mirror
// under the e18r.* prefix, so the default sweep (and its committed
// BENCH_scale.json baseline) is untouched.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "load/workload.hpp"
#include "placement/directory.hpp"
#include "placement/migration.hpp"
#include "placement/rebalancer.hpp"
#include "store/admission.hpp"

namespace weakset::bench {
namespace {

constexpr int kServers = 4;
constexpr int kGateways = 4;

/// True when --rebalance was passed: route sessions through the directory
/// service with the least-loaded policy active.
bool& rebalance_flag() {
  static bool on = false;
  return on;
}

/// Strips a bare `--rebalance` argument from argv (if present) into
/// rebalance_flag() — like --workers/--metrics-out, it must be gone before
/// google-benchmark's parser rejects it as unknown.
void extract_rebalance(int& argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--rebalance") {
      rebalance_flag() = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  argv[argc] = nullptr;
}

/// Admission policies swept by row index (state.range(1)).
struct PolicyRow {
  AdmissionPolicy policy;
  const char* name;
};
constexpr PolicyRow kPolicies[] = {
    {AdmissionPolicy::kUnbounded, "unbounded"},
    {AdmissionPolicy::kReject, "reject"},
    {AdmissionPolicy::kShedOldest, "shed-oldest"},
};

/// A deployment with gateway nodes: like bench_common::World, but sessions
/// need several client-side origins (one per gateway) instead of one
/// client node, and every node is shard-homed for --workers mode.
struct ScaleWorld {
  explicit ScaleWorld(const StoreServerOptions& sopts, std::uint64_t seed) {
    for (int i = 0; i < kServers; ++i) {
      servers.push_back(topo.add_node("server" + std::to_string(i)));
    }
    for (int i = 0; i < kGateways; ++i) {
      gateways.push_back(topo.add_node("gw" + std::to_string(i)));
    }
    // Gateway-to-server latency ramps with (gateway + server), so every
    // gateway has one near and one far server — a small wide-area spread.
    for (int g = 0; g < kGateways; ++g) {
      for (int s = 0; s < kServers; ++s) {
        topo.connect(gateways[static_cast<std::size_t>(g)],
                     servers[static_cast<std::size_t>(s)],
                     Duration::millis(5 + 5 * ((g + s) % kServers)));
      }
    }
    for (int i = 0; i < kServers; ++i) {
      for (int j = i + 1; j < kServers; ++j) {
        topo.connect(servers[static_cast<std::size_t>(i)],
                     servers[static_cast<std::size_t>(j)],
                     Duration::millis(10));
      }
    }
    topo.set_routing(Topology::Routing::kDirectOnly);
    if (const std::uint32_t workers = worker_flag(); workers > 0) {
      const auto nodes = static_cast<std::uint32_t>(topo.node_count());
      sim.configure_shards(nodes, workers, Duration::millis(5));
      for (std::uint32_t n = 0; n < nodes; ++n) sim.assign_node_shard(n, n);
      obs::global().enable_sharding(nodes + 1);  // + the serial shard
      metrics.enable_sharding(nodes + 1);
    }
    net = std::make_unique<RpcNetwork>(sim, topo, Rng{seed});
    repo = std::make_unique<Repository>(*net);
    StoreServerOptions options = sopts;
    options.metrics = &metrics;
    for (const NodeId node : servers) {
      ShardGuard guard{sim.sharded() ? sim.node_shard(node.raw()) : 0};
      repo->add_server(node, options);
    }
  }
  ~ScaleWorld() { repo->stop_all_daemons(); }

  Simulator sim;
  Topology topo;
  /// Row-local sink: per-row percentiles need a histogram that does not
  /// accumulate across sweep rows the way obs::global() would.
  obs::MetricsRegistry metrics;
  std::vector<NodeId> servers;
  std::vector<NodeId> gateways;
  std::unique_ptr<RpcNetwork> net;
  std::unique_ptr<Repository> repo;
};

double per_second(std::uint64_t count, Duration elapsed) {
  const double secs = static_cast<double>(elapsed.count_nanos()) / 1e9;
  return secs <= 0.0 ? 0.0 : static_cast<double>(count) / secs;
}

double pct_ms(const obs::MetricsRegistry& reg, const char* name, double q) {
  const obs::Histogram* h = reg.histogram(name);
  return h == nullptr ? 0.0 : static_cast<double>(h->percentile(q)) / 1e6;
}

void BM_ScaleSweep(benchmark::State& state) {
  const auto sessions = static_cast<std::size_t>(state.range(0));
  const PolicyRow& row = kPolicies[static_cast<std::size_t>(state.range(1))];

  for (auto _ : state) {
    StoreServerOptions sopts;
    sopts.admission.enabled = true;
    sopts.admission.policy = row.policy;
    sopts.admission.max_concurrency = 2;
    sopts.admission.max_queue_depth = 32;
    ScaleWorld world{sopts, /*seed=*/0xe18};

    // --rebalance control plane: migration engines on every server, the
    // directory on server 0, one placement cache per gateway. Each piece is
    // constructed under its node's shard guard so its daemons and handler
    // state are homed correctly in --workers mode.
    std::vector<std::unique_ptr<placement::MigrationEngine>> engines;
    std::unique_ptr<placement::DirectoryService> directory;
    std::vector<std::unique_ptr<placement::DirectoryClient>> dir_clients;
    std::unique_ptr<placement::Rebalancer> rebalancer;
    if (rebalance_flag()) {
      for (const NodeId node : world.servers) {
        ShardGuard guard{
            world.sim.sharded() ? world.sim.node_shard(node.raw()) : 0};
        engines.push_back(
            std::make_unique<placement::MigrationEngine>(*world.repo, node));
      }
      {
        ShardGuard guard{world.sim.sharded()
                             ? world.sim.node_shard(world.servers[0].raw())
                             : 0};
        placement::DirectoryServiceOptions dopts;
        dopts.metrics = &world.metrics;
        directory = std::make_unique<placement::DirectoryService>(
            *world.repo, world.servers[0], dopts);
      }
      for (const NodeId gw : world.gateways) {
        ShardGuard guard{
            world.sim.sharded() ? world.sim.node_shard(gw.raw()) : 0};
        placement::DirectoryClientOptions dco;
        dco.metrics = &world.metrics;
        dir_clients.push_back(std::make_unique<placement::DirectoryClient>(
            *world.repo, gw, world.servers[0], dco));
      }
    }

    load::LoadOptions options;
    options.sessions = sessions;
    options.tenants = 8;
    options.collections_per_tenant = 4;
    options.objects_per_collection = 16;
    options.mode = load::ArrivalMode::kOpenLoop;
    // Fixed 2s arrival window: offered load scales with the session count
    // (the sweep's whole point), concurrency ~ sessions * lifetime / window.
    options.mean_interarrival =
        Duration::nanos(Duration::seconds(2).count_nanos() /
                        static_cast<std::int64_t>(sessions));
    options.ops_per_session = 3;
    options.op_interval = Duration::millis(5);
    options.rpc_timeout = Duration::seconds(1);
    options.seed = 0x5ca1e;
    options.metrics = &world.metrics;
    for (const auto& client : dir_clients) {
      options.directories.push_back(client.get());
    }

    load::LoadEngine engine{*world.repo, world.gateways, options};
    engine.build();
    if (rebalance_flag()) {
      placement::RebalancerOptions rb;
      rb.policy = placement::RebalancePolicy::kLeastLoaded;
      rb.interval = Duration::millis(200);
      rb.metrics = &world.metrics;
      rebalancer = std::make_unique<placement::Rebalancer>(
          *world.repo, world.gateways[0], rb);
      for (const CollectionId id : engine.collections()) {
        rebalancer->manage(id);
      }
      // The scan loop reads repo-global demand counters and its moves
      // rehome fragments: serial shard, so it runs alone between windows.
      ShardGuard guard{world.sim.serial_shard()};
      rebalancer->start();
    }
    engine.run_to_completion();
    if (rebalancer != nullptr) {
      rebalancer->stop();
      for (const auto& client : dir_clients) client->stop();
      // Drain the scan loop's final wakeup and any in-flight move.
      world.sim.run_until(world.sim.now() + Duration::millis(500));
    }

    const load::LoadStats stats = engine.stats();
    const Duration elapsed = world.sim.now() - SimTime{};
    const obs::MetricsRegistry& reg = world.metrics;

    state.counters["sessions"] = static_cast<double>(sessions);
    state.counters["ops_offered"] = static_cast<double>(stats.ops_offered);
    state.counters["ops_ok"] = static_cast<double>(stats.ops_ok);
    state.counters["ops_overloaded"] =
        static_cast<double>(stats.ops_overloaded);
    state.counters["ops_failed"] = static_cast<double>(stats.ops_failed);
    state.counters["offered_per_s"] =
        per_second(stats.ops_offered, elapsed);
    state.counters["goodput_per_s"] = per_second(stats.ops_ok, elapsed);
    state.counters["p50_ms"] = pct_ms(reg, "load.op_latency_ns", 0.50);
    state.counters["p95_ms"] = pct_ms(reg, "load.op_latency_ns", 0.95);
    state.counters["p99_ms"] = pct_ms(reg, "load.op_latency_ns", 0.99);
    state.counters["admitted"] =
        static_cast<double>(reg.counter("store.admission.admitted"));
    state.counters["shed"] =
        static_cast<double>(reg.counter("store.admission.shed"));
    const obs::Histogram* depth =
        reg.histogram("store.admission.queue_depth");
    state.counters["max_queue_depth"] =
        depth == nullptr ? 0.0 : static_cast<double>(depth->max());
    state.counters["sim_elapsed_ms"] =
        static_cast<double>(elapsed.count_nanos()) / 1e6;
    if (rebalancer != nullptr) {
      state.counters["moves_requested"] =
          static_cast<double>(rebalancer->moves_requested());
      state.counters["moves_committed"] =
          static_cast<double>(rebalancer->moves_committed());
      state.counters["wrong_epoch_heals"] = static_cast<double>(
          reg.counter("store.client.wrong_epoch_retries"));
      state.counters["epoch_bumps"] =
          static_cast<double>(reg.counter("placement.dir.epoch_bumps"));
    }

    // Mirror the row's aggregates into the process-global registry (the
    // --metrics-out export): that is what the CI determinism cmp reads, so
    // the whole sweep's outcome is part of the byte-identical contract.
    const std::string prefix = std::string{rebalance_flag() ? "e18r.s"
                                                            : "e18.s"} +
                               std::to_string(sessions) + "." + row.name +
                               ".";
    obs::MetricsRegistry& global = obs::global();
    global.add(prefix + "ops_offered", stats.ops_offered);
    global.add(prefix + "ops_ok", stats.ops_ok);
    global.add(prefix + "ops_overloaded", stats.ops_overloaded);
    global.add(prefix + "ops_failed", stats.ops_failed);
    global.add(prefix + "admitted", reg.counter("store.admission.admitted"));
    global.add(prefix + "shed", reg.counter("store.admission.shed"));
    global.add(prefix + "p99_us",
               static_cast<std::uint64_t>(
                   pct_ms(reg, "load.op_latency_ns", 0.99) * 1e3));
    if (rebalancer != nullptr) {
      global.add(prefix + "moves_committed", rebalancer->moves_committed());
      global.add(prefix + "wrong_epoch_heals",
                 reg.counter("store.client.wrong_epoch_retries"));
    }

    state.SetLabel(std::string{row.name} +
                   (rebalance_flag() ? "+rebalance" : ""));
  }
}
BENCHMARK(BM_ScaleSweep)
    ->ArgsProduct({{1'000, 10'000, 100'000}, {0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

// WEAKSET_BENCHMARK_MAIN(), plus the --rebalance strip: the flag must be
// consumed before google-benchmark's parser rejects it as unrecognized.
int main(int argc, char** argv) {
  ::weakset::bench::extract_rebalance(argc, argv);
  ::weakset::bench::extract_workers(argc, argv);
  const std::optional<std::string> metrics_out =
      ::weakset::obs::extract_metrics_out(argc, argv);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (metrics_out &&
      !::weakset::obs::global().write_json_file(*metrics_out)) {
    return 1;
  }
  return 0;
}
