// FIG2 — Figure 2: the reachable(x)σ construct.
//
// Reproduces the paper's scenario (collection on node N; members α, β, γ on
// A, B, C; partition between N and C ⇒ reachable(a)σ = {α, β}) at scale:
// n members homed across k nodes, a fraction p of the member-holding nodes
// partitioned away. This is a genuine microbenchmark of the reachability
// evaluation (the failure-detector query the iterators consult), plus
// counters checking |reachable| = (1 - p) * n exactly.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "store/reachable.hpp"

namespace weakset::bench {
namespace {

void BM_ReachableEvaluation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int cut_percent = static_cast<int>(state.range(1));

  WorldConfig config;
  config.servers = 8;
  World world{config};
  const CollectionId coll = world.make_collection(n);
  (void)coll;

  // Partition `cut` of the 8 member-holding servers away from the client.
  const int cut = config.servers * cut_percent / 100;
  std::vector<std::vector<NodeId>> groups(2);
  groups[0].push_back(world.client_node);
  for (int i = 0; i < config.servers; ++i) {
    groups[i < config.servers - cut ? 0 : 1].push_back(
        world.servers[static_cast<std::size_t>(i)]);
  }
  world.topo.partition(groups);

  std::size_t reachable_count = 0;
  for (auto _ : state) {
    const auto reachable = reachable_members(
        world.topo, world.client_node,
        std::span<const ObjectRef>{world.objects});
    reachable_count = reachable.size();
    benchmark::DoNotOptimize(reachable_count);
  }
  state.counters["members"] = static_cast<double>(world.objects.size());
  state.counters["reachable"] = static_cast<double>(reachable_count);
}
BENCHMARK(BM_ReachableEvaluation)
    ->ArgsProduct({{64, 512, 4096}, {0, 25, 50, 75}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
