// E8 — the opening claim of section 1: "Order among elements does not
// matter. Hence retrieval of elements can be optimized."
//
// Quantifies what the ordering constraint costs: the same dynamic-set
// engine delivers either in ARRIVAL order (weak sets) or held back into
// MEMBERSHIP (digest) order (a POSIX-readdir-like contract). Files are laid
// out so that membership order interleaves near and far homes; in-order
// delivery therefore head-of-line blocks on far elements.
//
// Expected shape: identical time-to-last (same fetch schedule underneath),
// but arrival order delivers the first element and the median several times
// sooner; the gap widens with the latency spread.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "fs/ls.hpp"

namespace weakset::bench {
namespace {

void BM_OrderConstraint(benchmark::State& state) {
  const bool in_order = state.range(0) == 1;
  const int far_ms = static_cast<int>(state.range(1));
  const int files = 24;
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 6;
    config.near = Duration::millis(2);
    config.far = Duration::millis(far_ms);
    World world{config};
    DistFileSystem fs{*world.repo};
    const Directory dir = fs.mkdir(world.servers[0]);
    for (int i = 0; i < files; ++i) {
      // Reverse-ramp placement: the FIRST files in membership order live on
      // the FARTHEST servers — the worst case for an ordering contract.
      const NodeId home = world.servers[static_cast<std::size_t>(
          (config.servers - 1) - (i % config.servers))];
      char name[16];
      std::snprintf(name, sizeof name, "f%03d", i);
      fs.create_file(dir, home, name, "x");
    }
    RepositoryClient client{*world.repo, world.client_node};
    DynSetOptions options;
    options.prefetch_depth = 4;
    options.order = PickOrder::kClosestFirst;
    options.delivery =
        in_order ? DeliveryOrder::kMembership : DeliveryOrder::kArrival;
    const SimTime start = world.sim.now();
    const LsResult result =
        run_task(world.sim, ls_dynamic(client, dir, options));

    const auto at = [&](std::size_t index) {
      return (result.arrival_times().at(index) - start).as_millis();
    };
    state.counters["entries"] = static_cast<double>(result.names().size());
    state.counters["first_ms"] = at(0);
    state.counters["median_ms"] = at(result.names().size() / 2);
    state.counters["last_ms"] = at(result.names().size() - 1);
  }
}
BENCHMARK(BM_OrderConstraint)
    ->ArgsProduct({{0, 1}, {50, 200}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
