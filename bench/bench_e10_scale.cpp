// E10 — scaling with distribution: how the cost of reads and atomic
// snapshots grows as the collection's state is scattered over more
// fragments ("physically different parts of it may be scattered across many
// nodes", section 3).
//
// Sweeps fragment count at fixed membership. Reports simulated latency and
// RPC message cost of a loose read_all, an atomic snapshot, and a full
// optimistic iteration.
//
// Expected shape: read_all issues its per-fragment RPCs in parallel
// (DESIGN.md decision 9), so it grows with the max-of-fragments round trip
// plus the per-entry serving cost; snapshot_atomic still grows linearly and
// steeply (freeze + read + unfreeze per fragment — 3 sequential rounds);
// the full iteration is dominated by element fetches, so fragmentation
// barely moves it. bench_e13_membership decomposes the read_all gain
// (serial vs fan-out vs delta).

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace weakset::bench {
namespace {

void BM_ScaleWithFragments(benchmark::State& state) {
  const int fragments = static_cast<int>(state.range(0));
  const auto prefetch_window = static_cast<std::size_t>(state.range(1));
  const int n = 32;
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 16;
    config.near = Duration::millis(10);
    config.far = Duration::millis(30);  // flat-ish: isolate fan-out cost
    World world{config};
    const CollectionId coll = world.make_collection(n, fragments);
    RepositoryClient client{*world.repo, world.client_node};

    // Loose read.
    std::uint64_t calls_before = world.net->stats().calls;
    SimTime start = world.sim.now();
    const auto loose = run_task(
        world.sim, [](RepositoryClient& c, CollectionId id)
                       -> Task<Result<std::vector<ObjectRef>>> {
          co_return co_await c.read_all(id);
        }(client, coll));
    assert(loose.has_value());
    (void)loose;
    state.counters["read_all_ms"] = (world.sim.now() - start).as_millis();
    state.counters["read_all_rpcs"] =
        static_cast<double>(world.net->stats().calls - calls_before);

    // Atomic snapshot.
    calls_before = world.net->stats().calls;
    start = world.sim.now();
    const auto snap = run_task(
        world.sim, [](RepositoryClient& c, CollectionId id)
                       -> Task<Result<std::vector<ObjectRef>>> {
          co_return co_await c.snapshot_atomic(id);
        }(client, coll));
    assert(snap.has_value());
    (void)snap;
    state.counters["snapshot_ms"] = (world.sim.now() - start).as_millis();
    state.counters["snapshot_rpcs"] =
        static_cast<double>(world.net->stats().calls - calls_before);

    // Full optimistic iteration (element fetches go through the prefetch
    // pipeline at the swept window; 1 = serial).
    WeakSet set{client, coll};
    calls_before = world.net->stats().calls;
    start = world.sim.now();
    IteratorOptions options;
    options.prefetch_window = prefetch_window;
    auto iterator = set.elements(Semantics::kFig6Optimistic, options);
    const DrainResult result = run_task(world.sim, drain(*iterator));
    assert(result.finished());
    (void)result;
    state.counters["iterate_ms"] = (world.sim.now() - start).as_millis();
    state.counters["iterate_rpcs"] =
        static_cast<double>(world.net->stats().calls - calls_before);
    state.counters["prefetch_hits"] =
        static_cast<double>(iterator->stats().prefetch_hits);
  }
}
BENCHMARK(BM_ScaleWithFragments)
    ->ArgsProduct({{1, 2, 4, 8, 16}, {1, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
