// E12 — the quality/latency curve of bounded-time retrieval.
//
// Dynamic sets exist to serve interactive users: "We can return information
// to the user more quickly by yielding partial information" (section 1.1).
// A user waits only so long — so: how many elements does a session deliver
// within a time budget B, with and without closest-first ordering?
//
// Expected shape: a classic concave quality curve — the near half of the
// set arrives in the first fraction of the budget, the far tail dominates
// completion; closest-first shifts the curve up at every budget below
// completion time.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "fs/ls.hpp"

namespace weakset::bench {
namespace {

void BM_QualityVsBudget(benchmark::State& state) {
  const int budget_ms = static_cast<int>(state.range(0));
  const bool closest_first = state.range(1) == 1;
  const int files = 32;
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 8;
    config.near = Duration::millis(2);
    config.far = Duration::millis(250);
    World world{config};
    DistFileSystem fs{*world.repo};
    const Directory dir = fs.mkdir(world.servers[0]);
    for (int i = 0; i < files; ++i) {
      fs.create_file(dir,
                     world.servers[static_cast<std::size_t>(i) % 8],
                     "f" + std::to_string(i), "x");
    }
    RepositoryClient client{*world.repo, world.client_node};
    DynSetOptions options;
    options.prefetch_depth = 4;
    options.order =
        closest_first ? PickOrder::kClosestFirst : PickOrder::kGiven;
    options.session_budget = Duration::millis(budget_ms);
    options.membership_refresh = Duration::millis(50);
    const LsResult result =
        run_task(world.sim, ls_dynamic(client, dir, options));
    state.counters["delivered_pct"] =
        100.0 * static_cast<double>(result.names().size()) / files;
    state.counters["complete"] = result.complete() ? 1 : 0;
  }
}
BENCHMARK(BM_QualityVsBudget)
    ->ArgsProduct({{100, 200, 400, 800, 1600}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
