// E1 — the section 1.1 claim: dynamic sets cut latency by yielding partial
// information and fetching in parallel.
//
// ls over a directory of d files spread across k servers: strict POSIX ls
// (all files fetched before anything returns) vs dynamic-set ls. Reports
// simulated time to the FIRST entry and to the LAST entry.
//
// Expected shape: dynamic time-to-first is roughly one membership read plus
// one near fetch, independent of d; strict time-to-first equals its
// time-to-last and grows with d. Dynamic time-to-last also wins via
// parallel prefetch (bounded by depth).

#include <benchmark/benchmark.h>

#include <cassert>

#include "bench_common.hpp"
#include "fs/ls.hpp"

namespace weakset::bench {
namespace {

Directory make_directory(World& world, int files) {
  DistFileSystem fs{*world.repo};
  const Directory dir = fs.mkdir(world.servers[0]);
  for (int i = 0; i < files; ++i) {
    const NodeId home =
        world.servers[static_cast<std::size_t>(i) % world.servers.size()];
    char name[32];
    std::snprintf(name, sizeof name, "file%04d.txt", i);
    fs.create_file(dir, home, name, "contents");
  }
  return dir;
}

void BM_StrictLs(benchmark::State& state) {
  const int files = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 8;
    World world{config};
    const Directory dir = make_directory(world, files);
    RepositoryClient client{*world.repo, world.client_node};
    const SimTime start = world.sim.now();
    const LsResult result = run_task(world.sim, ls_strict(client, dir));
    state.counters["first_ms"] =
        result.names().empty()
            ? 0
            : (result.arrival_times().front() - start).as_millis();
    state.counters["all_ms"] = (world.sim.now() - start).as_millis();
    state.counters["entries"] = static_cast<double>(result.names().size());
  }
}
BENCHMARK(BM_StrictLs)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_DynamicLs(benchmark::State& state) {
  const int files = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 8;
    World world{config};
    const Directory dir = make_directory(world, files);
    RepositoryClient client{*world.repo, world.client_node};
    DynSetOptions options;
    options.prefetch_depth = static_cast<std::size_t>(depth);
    options.order = PickOrder::kClosestFirst;
    const SimTime start = world.sim.now();
    const LsResult result =
        run_task(world.sim, ls_dynamic(client, dir, options));
    state.counters["first_ms"] =
        result.names().empty()
            ? 0
            : (result.arrival_times().front() - start).as_millis();
    state.counters["all_ms"] = (world.sim.now() - start).as_millis();
    state.counters["entries"] = static_cast<double>(result.names().size());
  }
}
BENCHMARK(BM_DynamicLs)
    ->ArgsProduct({{8, 32, 128}, {1, 4, 16}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Fig1DrainPrefetch(benchmark::State& state) {
  // The ISSUE 1 acceptance scenario: a Fig 1 drain of 200 elements over the
  // default 4-server world (far servers), sweeping the iterator's prefetch
  // window. Window 1 is the serial pre-pipeline behaviour; the batched
  // pipeline must cut simulated drain time by >= 2x at window 8.
  const int elements = static_cast<int>(state.range(0));
  const auto window = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    World world{WorldConfig{}};
    const CollectionId coll = world.make_collection(elements);
    RepositoryClient client{*world.repo, world.client_node};
    WeakSet set{client, coll};
    IteratorOptions options;
    options.prefetch_window = window;
    auto iterator = set.elements(Semantics::kFig1Immutable, options);
    const std::uint64_t calls_before = world.net->stats().calls;
    const SimTime start = world.sim.now();
    const DrainResult result = run_task(world.sim, drain(*iterator));
    assert(result.finished());
    state.counters["drain_ms"] = (world.sim.now() - start).as_millis();
    state.counters["yielded"] = static_cast<double>(result.count());
    state.counters["rpcs"] =
        static_cast<double>(world.net->stats().calls - calls_before);
    const IteratorStats& stats = iterator->stats();
    state.counters["hits"] = static_cast<double>(stats.prefetch_hits);
    state.counters["misses"] = static_cast<double>(stats.prefetch_misses);
    state.counters["batches"] = static_cast<double>(stats.prefetch_batches);
  }
}
BENCHMARK(BM_Fig1DrainPrefetch)
    ->ArgsProduct({{200}, {1, 2, 4, 8, 16, 32}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
