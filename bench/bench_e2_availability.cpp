// E2 — the section 3 claim: optimistic handling buys availability under
// failures; pessimistic handling gives up.
//
// At query start each member-holding server is down with probability p; the
// outages are TRANSIENT (repaired after 1.5s — "the failure has been
// repaired by that time", section 3). Over seeded trials:
//   fig3 (pessimistic)  yields what is reachable, then signals failure —
//                       the user never gets the full set unless nothing was
//                       down.
//   fig6 (optimistic)   blocks over the outage and always completes, paying
//                       time instead of completeness.
// Reports completion rate, mean retrieved fraction, and mean time.
//
// Expected shape: fig3 completion collapses as (1-p)^5 with bounded time;
// fig6 completes 100% at every p, with mean time stepping up by the outage
// duration once any server is down.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace weakset::bench {
namespace {

constexpr int kTrials = 24;
constexpr int kObjects = 32;
constexpr Duration kOutage = Duration::millis(1500);

struct TrialOutcome {
  TrialOutcome(bool completed, double retrieved, Duration time)
      : completed(completed), retrieved(retrieved), time(time) {}
  bool completed;
  double retrieved;
  Duration time;
};

TrialOutcome run_trial(Semantics semantics, double p, std::uint64_t seed) {
  WorldConfig config;
  config.servers = 6;
  config.seed = seed;
  World world{config};
  const CollectionId coll = world.make_collection(kObjects);
  RepositoryClient client{*world.repo, world.client_node};
  WeakSet set{client, coll};

  Rng rng{seed ^ 0xdead};
  // The collection primary (servers[0]) stays up: we measure element
  // availability; directory availability is covered by E5.
  for (std::size_t i = 1; i < world.servers.size(); ++i) {
    if (rng.bernoulli(p)) {
      world.topo.crash(world.servers[i]);
      const NodeId node = world.servers[i];
      world.sim.schedule(kOutage, [&world, node] { world.topo.restart(node); });
    }
  }

  IteratorOptions options;
  options.retry = RetryPolicy::forever(Duration::millis(100));
  auto iterator = set.elements(semantics, options);
  const SimTime start = world.sim.now();
  const DrainResult result = run_task(world.sim, drain(*iterator));
  return TrialOutcome{result.finished() && result.count() == kObjects,
                      static_cast<double>(result.count()) / kObjects,
                      world.sim.now() - start};
}

void BM_Availability(benchmark::State& state) {
  const bool optimistic = state.range(0) == 1;
  const double p = static_cast<double>(state.range(1)) / 100.0;
  const Semantics semantics = optimistic ? Semantics::kFig6Optimistic
                                         : Semantics::kFig3ImmutableFailAware;
  for (auto _ : state) {
    int completed = 0;
    double retrieved = 0;
    double total_ms = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const TrialOutcome outcome =
          run_trial(semantics, p, 1000 + static_cast<std::uint64_t>(trial));
      completed += outcome.completed ? 1 : 0;
      retrieved += outcome.retrieved;
      total_ms += outcome.time.as_millis();
    }
    state.counters["completed_pct"] = 100.0 * completed / kTrials;
    state.counters["retrieved_pct"] = 100.0 * retrieved / kTrials;
    state.counters["mean_ms"] = total_ms / kTrials;
  }
}
BENCHMARK(BM_Availability)
    ->ArgsProduct({{0, 1}, {0, 10, 25, 50, 75}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
