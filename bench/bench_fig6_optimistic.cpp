// FIG6 — Figure 6: growing and shrinking set, optimistic failure handling —
// the dynamic-sets semantics.
//
// Two experiments: (1) full churn (adds and removes) with no failures —
// the iterator must terminate cleanly and satisfy the Figure 6 window
// guarantee; (2) a transient partition of duration D — the iterator blocks
// and completes after the repair, total time ≈ D + iteration work, never
// signalling failure.
//
// Expected shape: (1) zero violations at every churn rate; (2) completion
// time tracks D linearly with unit slope.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace weakset::bench {
namespace {

void BM_Fig6UnderChurn(benchmark::State& state) {
  const int n = 32;
  const int interval_ms = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WorldConfig config;
    World world{config};
    const CollectionId coll = world.make_collection(n);
    RepositoryClient client{*world.repo, world.client_node};
    WeakSet set{client, coll};
    spec::TimelineProbe probe{*world.repo, coll};

    // Churn for a bounded window: with unbounded growth faster than the
    // yield rate the optimistic iterator (correctly) never terminates.
    world.spawn_churn(coll, Duration::millis(interval_ms),
                      /*remove_bias=*/0.4,
                      world.sim.now() + Duration::seconds(2),
                      config.seed ^ 0xf16);

    spec::RepoGroundTruth truth{*world.repo, coll, world.client_node};
    spec::TraceRecorder recorder{truth};
    IteratorOptions options;
    options.recorder = &recorder;
    auto iterator = set.elements(Semantics::kFig6Optimistic, options);
    const SimTime start = world.sim.now();
    const DrainResult result = run_task(world.sim, drain(*iterator));

    state.counters["yields"] = static_cast<double>(result.count());
    state.counters["returned"] = result.finished() ? 1 : 0;
    state.counters["sim_ms"] = (world.sim.now() - start).as_millis();
    state.counters["fig6_violations"] = static_cast<double>(
        spec::check_fig6(recorder.finish(), probe.timeline())
            .violation_count());
  }
}
BENCHMARK(BM_Fig6UnderChurn)
    ->Arg(5)
    ->Arg(20)
    ->Arg(80)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_Fig6TransientPartition(benchmark::State& state) {
  const int n = 32;
  const int outage_ms = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 4;
    World world{config};
    const CollectionId coll = world.make_collection(n);
    RepositoryClient client{*world.repo, world.client_node};
    WeakSet set{client, coll};
    spec::TimelineProbe probe{*world.repo, coll};

    // One member-holding server drops out 50ms in, for `outage_ms`.
    world.sim.schedule(Duration::millis(50), [&world] {
      world.topo.set_link_up(world.client_node, world.servers[3], false);
    });
    world.sim.schedule(Duration::millis(50 + outage_ms), [&world] {
      world.topo.set_link_up(world.client_node, world.servers[3], true);
    });

    spec::RepoGroundTruth truth{*world.repo, coll, world.client_node};
    spec::TraceRecorder recorder{truth};
    IteratorOptions options;
    options.recorder = &recorder;
    options.retry = RetryPolicy::forever(Duration::millis(100));
    auto iterator = set.elements(Semantics::kFig6Optimistic, options);
    const SimTime start = world.sim.now();
    const DrainResult result = run_task(world.sim, drain(*iterator));

    state.counters["yields"] = static_cast<double>(result.count());
    state.counters["returned"] = result.finished() ? 1 : 0;
    state.counters["outage_ms"] = outage_ms;
    state.counters["sim_ms"] = (world.sim.now() - start).as_millis();
    state.counters["fig6_violations"] = static_cast<double>(
        spec::check_fig6(recorder.finish(), probe.timeline())
            .violation_count());
  }
}
BENCHMARK(BM_Fig6TransientPartition)
    ->Arg(0)
    ->Arg(500)
    ->Arg(2000)
    ->Arg(8000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
