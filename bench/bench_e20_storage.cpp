// E20 — block storage engine: what the paged, shadow-checkpointed store
// (src/block, DESIGN.md decision 17) buys over the whole-file checkpoint
// path, on the two axes the design is about:
//
//   BM_RecoveryVsSize — collection size sweeps 10x at a *fixed* WAL-tail
//   dirty count (one manual checkpoint covers the seed, then a scripted
//   churn burst). With the block engine on, recovery loads superblock +
//   root and faults only the buckets the tail touches, so recovery_ms and
//   recovery_read_kb stay flat as members grows; the whole-file path
//   re-reads an image proportional to the collection.
//
//   BM_CacheSweep — the on-disk image grows to many multiples of a fixed
//   page-cache budget while a mutation workload keeps faulting scattered
//   buckets. The engine must keep serving correctly with resident bytes
//   bounded by the budget (evictions + dirty write-backs do the shedding);
//   image_over_budget documents the ratio the row achieved.
//
// All quantities are simulated time / engine telemetry deltas and
// deterministic: same binary, same seed, any --workers count — the CI gate
// cmp's a double run and a workers=1 vs workers=4 pair byte-for-byte.

#include <benchmark/benchmark.h>

#include <cassert>
#include <cstdint>

#include "bench_common.hpp"

namespace weakset::bench {
namespace {

/// Churn window after the covering checkpoint: the fixed dirty tail.
constexpr Duration kChurnWindow = Duration::millis(80);
constexpr Duration kChurnInterval = Duration::millis(1);

StoreServerOptions durable_options() {
  StoreServerOptions options;
  options.durability.durable_acks = true;
  options.durability.fsync_interval = Duration::millis(1);
  // Checkpoints are manual (checkpoint_now) so every cell carries the same
  // replay tail regardless of how long seeding took.
  options.durability.checkpoint_interval = Duration::seconds(1000);
  return options;
}

std::int64_t hist_sum(const obs::MetricsRegistry& reg, const char* name) {
  const obs::Histogram* h = reg.histogram(name);
  return h == nullptr ? 0 : h->sum();
}

void BM_RecoveryVsSize(benchmark::State& state) {
  const auto members = static_cast<int>(state.range(0));
  const bool block_on = state.range(1) != 0;
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 2;
    config.near = Duration::millis(2);
    config.far = Duration::millis(5);
    config.mesh = Duration::millis(5);
    config.server_options = durable_options();
    if (block_on) {
      auto& block = config.server_options.durability.block;
      block.enabled = true;
      block.cache_bytes = 32 * 1024;
      // Keep buckets a few blocks: ~members / 128 (floor 16).
      block.buckets = static_cast<std::uint32_t>(
          members / 128 < 16 ? 16 : members / 128);
      block.compaction_interval = Duration::zero();  // isolate recovery
    }
    obs::MetricsRegistry& reg = obs::global();

    World world{config};
    // Seeding appends to server0's durable WAL; arm its flush timers from
    // the serial shard (as spawn_churn does) so cross-shard ordering is
    // identical at every worker count.
    CollectionId coll;
    {
      ShardGuard guard{world.sim.serial_shard()};
      coll = world.make_collection(members, 1);
    }
    // One checkpoint covers the whole seed; the WAL tail at crash time is
    // exactly the churn burst below — the same dirty count for every size.
    // Home the task on the primary's shard so sharded runs order its events
    // identically to classic mode.
    {
      ShardGuard guard{world.sim.sharded()
                           ? world.sim.node_shard(world.servers[0].raw())
                           : 0};
      const bool checkpointed = run_task(
          world.sim,
          world.repo->server_at(world.servers[0])->checkpoint_now());
      assert(checkpointed);
      (void)checkpointed;
    }

    const SimTime churn_start = world.sim.now();
    world.spawn_churn(coll, kChurnInterval, 0.3, churn_start + kChurnWindow,
                      42);
    world.sim.run_until(churn_start + kChurnWindow + Duration::millis(20));

    const std::uint64_t replayed_before = reg.counter("wal.ops_replayed");
    const std::int64_t recovery_ns_before = hist_sum(reg, "wal.recovery");
    const std::uint64_t recovery_read_before =
        reg.counter("store.block.recovery_read_bytes");

    // The crash and restart ride the event queue: injected between
    // run_until windows they would race the loop's stop boundary, whose
    // in-flight state differs between classic and sharded execution. They
    // are homed on the serial shard (like churn) because a crash touches
    // every node's state — it cancels RPC timeout timers of the callers
    // too, which mid-window events may not do across shards.
    const SimTime crash_at = world.sim.now();
    world.sim.schedule_on(world.sim.serial_shard(), Duration::millis(1),
                          [&world] {
                            world.topo.crash(world.servers[0],
                                             Topology::CrashKind::kAmnesia);
                          });
    world.sim.schedule_on(world.sim.serial_shard(), Duration::millis(20),
                          [&world] { world.topo.restart(world.servers[0]); });
    world.sim.run_until(crash_at + Duration::millis(300));

    // The recovered primary serves the full durable membership again.
    RepositoryClient client{*world.repo, world.client_node};
    const auto after = run_task(
        world.sim,
        [](RepositoryClient& c,
           CollectionId id) -> Task<Result<std::vector<ObjectRef>>> {
          co_return co_await c.read_all(id);
        }(client, coll));
    assert(after.has_value());
    // Park the world at a fixed instant before it is destroyed: run_task
    // stops the loop mid-instant, and how much surrounding work (fsync
    // ticks) the other shards completed by then varies with the worker
    // count. A closing run_until drains to a deterministic boundary.
    world.sim.run_until(crash_at + Duration::millis(400));

    state.counters["recovery_ms"] =
        static_cast<double>(hist_sum(reg, "wal.recovery") -
                            recovery_ns_before) /
        1e6;
    state.counters["ops_replayed"] = static_cast<double>(
        reg.counter("wal.ops_replayed") - replayed_before);
    state.counters["recovery_read_kb"] =
        static_cast<double>(reg.counter("store.block.recovery_read_bytes") -
                            recovery_read_before) /
        1024.0;
    state.counters["members_after"] =
        static_cast<double>(after.value().size());
    if (block_on) {
      const auto* engine =
          world.repo->server_at(world.servers[0])->block_engine();
      assert(engine != nullptr);
      state.counters["image_kb"] =
          static_cast<double>(engine->file_blocks(coll.raw()) *
                              engine->options().block_size) /
          1024.0;
    }
  }
}
// members x block engine off/on. The size sweep spans 10x; the flat-curve
// claim compares recovery_ms across rows within block_on=1.
BENCHMARK(BM_RecoveryVsSize)
    ->ArgsProduct({{512, 2048, 8192, 20480}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_CacheSweep(benchmark::State& state) {
  const auto members = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 2;
    config.near = Duration::millis(2);
    config.far = Duration::millis(5);
    config.mesh = Duration::millis(5);
    config.server_options = durable_options();
    auto& block = config.server_options.durability.block;
    block.enabled = true;
    block.block_size = 512;   // small blocks: image tracks members closely
    block.cache_bytes = 4096; // fixed budget the image dwarfs
    block.buckets = 64;
    obs::MetricsRegistry& reg = obs::global();
    const std::uint64_t hits_before = reg.counter("store.block.cache_hits");
    const std::uint64_t misses_before =
        reg.counter("store.block.cache_misses");
    const std::uint64_t evictions_before =
        reg.counter("store.block.evictions");
    const std::uint64_t writebacks_before =
        reg.counter("store.block.dirty_writebacks");

    World world{config};
    CollectionId coll;
    {
      ShardGuard guard{world.sim.serial_shard()};  // see BM_RecoveryVsSize
      coll = world.make_collection(members, 1);
    }
    {
      ShardGuard guard{world.sim.sharded()
                           ? world.sim.node_shard(world.servers[0].raw())
                           : 0};
      const bool checkpointed = run_task(
          world.sim,
          world.repo->server_at(world.servers[0])->checkpoint_now());
      assert(checkpointed);
      (void)checkpointed;
    }

    // Scattered mutations: every op faults its member's bucket through the
    // fixed-size cache, evicting (and writing back dirty pages) to stay
    // inside the budget.
    const SimTime churn_start = world.sim.now();
    world.spawn_churn(coll, kChurnInterval, 0.5,
                      churn_start + Duration::millis(150), 7);
    world.sim.run_until(churn_start + Duration::millis(200));

    RepositoryClient client{*world.repo, world.client_node};
    const auto after = run_task(
        world.sim,
        [](RepositoryClient& c,
           CollectionId id) -> Task<Result<std::vector<ObjectRef>>> {
          co_return co_await c.read_all(id);
        }(client, coll));
    assert(after.has_value());
    world.sim.run_until(churn_start + Duration::millis(250));  // see above

    const auto* engine =
        world.repo->server_at(world.servers[0])->block_engine();
    assert(engine != nullptr);
    const double image_bytes =
        static_cast<double>(engine->file_blocks(coll.raw()) *
                            engine->options().block_size);
    state.counters["image_kb"] = image_bytes / 1024.0;
    state.counters["cache_kb"] =
        static_cast<double>(engine->cache_budget()) / 1024.0;
    state.counters["image_over_budget"] =
        image_bytes / static_cast<double>(engine->cache_budget());
    state.counters["resident_kb"] =
        static_cast<double>(engine->resident_bytes()) / 1024.0;
    state.counters["cache_hits"] =
        static_cast<double>(reg.counter("store.block.cache_hits") -
                            hits_before);
    state.counters["cache_misses"] =
        static_cast<double>(reg.counter("store.block.cache_misses") -
                            misses_before);
    state.counters["evictions"] =
        static_cast<double>(reg.counter("store.block.evictions") -
                            evictions_before);
    state.counters["dirty_writebacks"] =
        static_cast<double>(reg.counter("store.block.dirty_writebacks") -
                            writebacks_before);
    state.counters["members_after"] =
        static_cast<double>(after.value().size());
  }
}
// Collection size sweeps while the byte budget stays at 4 KiB; the largest
// rows push the on-disk image past 10x the cache.
BENCHMARK(BM_CacheSweep)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
