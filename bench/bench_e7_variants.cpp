// E7 — the section 3.3 implementation variants:
//
//  (a) Ghost-delete pinning: "To ensure that sets only grow during the
//      iterator's use of the set, we can prevent objects from being deleted
//      until the iterator terminates ... and then garbage collect these
//      'ghost' copies upon termination." Compares three ways to run a
//      pessimistic reader under add+remove churn:
//        freeze   (Fig 3 + lock)   — blocks ALL mutations
//        pin      (Fig 5 + pin)    — blocks only removals (ghosts)
//        none     (Fig 5 bare)     — blocks nothing; grow-only constraint
//                                    may be violated by the environment
//      Reports reader outcome, mutator throughput, and whether the run
//      window really was grow-only (conformance).
//
//  (b) Quorum reads: "one could easily specify the iterator to use a quorum
//      or token-based scheme." Sweeps quorum size r over 1 primary + 2
//      replicas with slow anti-entropy; reports read freshness (missed
//      recent adds) and read latency.
//
// Expected shape: (a) mutator ops: none > pin > freeze, while pin still
// guarantees a grow-only window (0 constraint violations) — the paper's
// point that grow-only is cheaper to enforce than immutability;
// (b) larger quorums read fresher membership at higher latency.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace weakset::bench {
namespace {

// ---------------------------------------------------------------------------
// (a) ghost-delete pinning

struct MutatorCounters {
  std::uint64_t adds = 0;
  std::uint64_t removes = 0;
  std::uint64_t failed = 0;
};

// Churn is bounded by a deadline: with unbounded growth the pessimistic
// reader "may never terminate" (section 3.3) — true, but not measurable.
Task<void> mutator_process(World& world, CollectionId coll,
                           MutatorCounters& counters, std::uint64_t seed,
                           SimTime until) {
  Rng rng{seed};
  RepositoryClient client{*world.repo, world.servers[1]};
  std::uint64_t next = 2'000'000;
  while (world.sim.now() < until) {
    co_await world.sim.delay(rng.exponential(Duration::millis(15)));
    if (world.sim.now() >= until) co_return;
    if (rng.bernoulli(0.5)) {
      const ObjectRef ref = world.repo->create_object(
          rng.pick(world.servers), "m" + std::to_string(next++));
      world.objects.push_back(ref);
      const auto result = co_await client.add(coll, ref);
      if (result) {
        ++counters.adds;
      } else {
        ++counters.failed;
      }
    } else {
      const ObjectRef victim = rng.pick(world.objects);
      const auto result = co_await client.remove(coll, victim);
      if (result) {
        ++counters.removes;
      } else {
        ++counters.failed;
      }
    }
  }
}

void BM_GrowOnlyEnforcement(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));  // 0 freeze 1 pin 2 none
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 4;
    World world{config};
    const CollectionId coll = world.make_collection(24);
    spec::TimelineProbe probe{*world.repo, coll};
    ClientOptions copts;
    copts.read_policy = ReadPolicy::kPrimaryOnly;
    RepositoryClient client{*world.repo, world.client_node, copts};
    WeakSet set{client, coll};

    MutatorCounters counters;
    const SimTime churn_until = world.sim.now() + Duration::seconds(2);
    for (int m = 0; m < 4; ++m) {
      world.sim.spawn(mutator_process(world, coll, counters,
                                      70 + static_cast<std::uint64_t>(m),
                                      churn_until));
    }

    spec::RepoGroundTruth truth{*world.repo, coll, world.client_node};
    spec::TraceRecorder recorder{truth};
    Semantics semantics = Semantics::kFig5GrowOnlyPessimistic;
    IteratorOptions options;
    options.recorder = &recorder;
    if (mode == 0) {
      semantics = Semantics::kFig3ImmutableFailAware;
      options.enforce_freeze = true;
    } else if (mode == 1) {
      options.enforce_grow_only = true;
    }

    auto iterator = set.elements(semantics, options);
    const SimTime start = world.sim.now();
    const DrainResult result = run_task(world.sim, drain(*iterator));
    const Duration reader_time = world.sim.now() - start;
    world.sim.run_until(world.sim.now() + Duration::seconds(3));

    const auto trace = recorder.finish();
    state.counters["reader_ms"] = reader_time.as_millis();
    state.counters["reader_ok"] = result.finished() ? 1 : 0;
    state.counters["yields"] = static_cast<double>(result.count());
    state.counters["mut_ops"] =
        static_cast<double>(counters.adds + counters.removes);
    state.counters["mut_failed"] = static_cast<double>(counters.failed);
    state.counters["window_grow_only"] =
        spec::check_constraint_grow_only(probe.timeline(), trace.first_time(),
                                         trace.last_time())
                .satisfied()
            ? 1
            : 0;
  }
}
BENCHMARK(BM_GrowOnlyEnforcement)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// (b) quorum reads

void BM_QuorumFreshness(benchmark::State& state) {
  const std::size_t quorum = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 3;
    config.near = Duration::millis(2);
    config.far = Duration::millis(80);
    config.server_options.pull_interval = Duration::millis(500);  // slow
    World world{config};
    // Primary on the FAR server, replicas nearer.
    const CollectionId coll =
        world.repo->create_collection({world.servers[2]});
    world.repo->add_replica(coll, 0, world.servers[0]);
    world.repo->add_replica(coll, 0, world.servers[1]);

    // Seed 16 members, let replicas converge, then add 8 "recent" members
    // the replicas have not pulled yet.
    for (int i = 0; i < 16; ++i) {
      const ObjectRef ref = world.repo->create_object(
          world.servers[0], "old" + std::to_string(i));
      world.repo->seed_member(coll, ref);
    }
    world.sim.run_until(world.sim.now() + Duration::seconds(3));
    RepositoryClient writer{*world.repo, world.servers[2],
                            ClientOptions{{}, ReadPolicy::kPrimaryOnly}};
    run_task(world.sim,
             [](World& w, RepositoryClient& wr, CollectionId c) -> Task<void> {
               for (int i = 0; i < 8; ++i) {
                 const ObjectRef ref = w.repo->create_object(
                     w.servers[0], "new" + std::to_string(i));
                 (void)co_await wr.add(c, ref);
               }
             }(world, writer, coll));

    // Quorum read from the client.
    ClientOptions copts;
    copts.read_policy = ReadPolicy::kQuorum;
    copts.quorum = quorum;
    RepositoryClient reader{*world.repo, world.client_node, copts};
    const SimTime start = world.sim.now();
    const auto members = run_task(
        world.sim,
        [](RepositoryClient& r, CollectionId c)
            -> Task<Result<std::vector<ObjectRef>>> {
          co_return co_await r.read_all(c);
        }(reader, coll));
    const Duration read_latency = world.sim.now() - start;

    const double seen =
        members ? static_cast<double>(members.value().size()) : 0;
    state.counters["members_seen"] = seen;
    state.counters["missed_recent"] = 24 - seen;
    state.counters["read_ms"] = read_latency.as_millis();
  }
}
BENCHMARK(BM_QuorumFreshness)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
