// FIG1 — Figure 1: immutable set, failures ignored.
//
// Baseline semantics. Measures full-iteration and time-to-first-element
// simulated latency as the set grows, and verifies the run against the
// Figure 1 specification (violations counter must be 0).
//
// Expected shape: total time linear in n (sequential fetches), first element
// after ~one membership read + one fetch; zero spec violations.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace weakset::bench {
namespace {

void BM_Fig1Iteration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    World world{WorldConfig{}};
    const CollectionId coll = world.make_collection(n);
    RepositoryClient client{*world.repo, world.client_node};
    WeakSet set{client, coll};

    // Record traces only for sizes where the O(n^2) observation cost is
    // negligible.
    const bool record = n <= 256;
    spec::RepoGroundTruth truth{*world.repo, coll, world.client_node};
    spec::TraceRecorder recorder{truth};
    IteratorOptions options;
    if (record) options.recorder = &recorder;

    auto iterator = set.elements(Semantics::kFig1Immutable, options);
    const SimTime start = world.sim.now();
    SimTime first_yield = start;
    std::size_t yields = 0;
    DrainResult result = run_task(
        world.sim,
        [](Simulator& sim, ElementsIterator& it, SimTime& first,
           std::size_t& count) -> Task<DrainResult> {
          DrainResult out;
          for (;;) {
            Step step = co_await it.next();
            if (step.is_yield()) {
              if (count++ == 0) first = sim.now();
              out.add(step.ref(), step.value());
              continue;
            }
            if (step.is_finished()) out.set_finished();
            co_return out;
          }
        }(world.sim, *iterator, first_yield, yields));

    state.counters["sim_total_ms"] = (world.sim.now() - start).as_millis();
    state.counters["sim_first_ms"] = (first_yield - start).as_millis();
    state.counters["yields"] = static_cast<double>(result.count());
    if (record) {
      state.counters["fig1_violations"] = static_cast<double>(
          spec::check_fig1(recorder.finish()).violation_count());
    }
  }
}
BENCHMARK(BM_Fig1Iteration)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
