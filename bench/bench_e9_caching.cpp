// E9 — client-side caching: the paper's "cached version" remark made
// quantitative. Weak sets tolerate stale data, so a cache is free to serve
// old copies; what does it buy?
//
//  (a) Repeated iteration of the same set (the user re-runs yesterday's
//      query): cold run vs warm runs, sweeping cache capacity relative to
//      the set size.
//  (b) Availability: after a warm run, the objects' homes are partitioned
//      away; the next run must still deliver every member from cache.
//
// Expected shape: warm runs collapse to membership-read cost only when the
// cache holds the whole set (capacity >= n); a too-small cache thrashes
// (LRU eviction ahead of the iteration order) and buys nothing. Under the
// partition, the cached run delivers 100% where the uncached one delivers
// nothing.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/caching_view.hpp"

namespace weakset::bench {
namespace {

void BM_RepeatedIteration(benchmark::State& state) {
  const int n = 32;
  const int capacity = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 4;
    World world{config};
    const CollectionId coll = world.make_collection(n);
    RepositoryClient client{*world.repo, world.client_node};
    RepoSetView inner{client, coll};
    CacheOptions cache_options;
    cache_options.capacity = static_cast<std::size_t>(capacity);
    CachingSetView view{inner, cache_options};

    auto run_once = [&]() -> Duration {
      auto iterator = make_elements_iterator(view, Semantics::kFig6Optimistic);
      const SimTime start = world.sim.now();
      const DrainResult result = run_task(world.sim, drain(*iterator));
      assert(result.finished());
      (void)result;
      return world.sim.now() - start;
    };

    const Duration cold = run_once();
    const Duration warm = run_once();
    state.counters["cold_ms"] = cold.as_millis();
    state.counters["warm_ms"] = warm.as_millis();
    state.counters["hit_rate_pct"] =
        100.0 * static_cast<double>(view.stats().hits) /
        static_cast<double>(view.stats().hits + view.stats().misses);
  }
}
BENCHMARK(BM_RepeatedIteration)
    ->Arg(8)    // cache smaller than the set: thrash
    ->Arg(32)   // exactly the set
    ->Arg(128)  // ample
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_AvailabilityFromCache(benchmark::State& state) {
  const bool cached = state.range(0) == 1;
  const int n = 16;
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 4;
    World world{config};
    // Keep the collection's directory on a node that stays up (servers[0])
    // while the object homes (servers[1..3]) go down.
    const CollectionId coll = world.repo->create_collection({world.servers[0]});
    for (int i = 0; i < n; ++i) {
      const ObjectRef ref = world.repo->create_object(
          world.servers[1 + static_cast<std::size_t>(i) % 3],
          "obj" + std::to_string(i));
      world.objects.push_back(ref);
      world.repo->seed_member(coll, ref);
    }
    RepositoryClient client{*world.repo, world.client_node};
    RepoSetView inner{client, coll};
    CachingSetView view{inner};
    SetView& used = cached ? static_cast<SetView&>(view) : inner;

    // Warm pass (both modes pay it; only the cached mode remembers).
    {
      auto it = make_elements_iterator(used, Semantics::kFig6Optimistic);
      (void)run_task(world.sim, drain(*it));
    }
    // Every object home goes down.
    for (std::size_t i = 1; i < world.servers.size(); ++i) {
      world.topo.crash(world.servers[i]);
    }
    IteratorOptions options;
    options.retry = RetryPolicy{3, Duration::millis(100)};
    auto it = make_elements_iterator(used, Semantics::kFig6Optimistic, options);
    const DrainResult result = run_task(world.sim, drain(*it));
    state.counters["delivered_pct"] =
        100.0 * static_cast<double>(result.count()) / n;
    state.counters["completed"] = result.finished() ? 1 : 0;
  }
}
BENCHMARK(BM_AvailabilityFromCache)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
