// E13 — membership refresh cost: what the parallel fan-out and the
// versioned delta-sync protocol buy on the Fig 5/6 hot path, where every
// next() re-reads the visible membership (DESIGN.md decision 9).
//
// Two sweeps:
//
//   BM_MembershipRefresh: full fig6 iterations over a fragmented set, mode ×
//   mutation rate. Modes: serial full reads (one snapshot RPC per fragment,
//   issued sequentially — the pre-fan-out behaviour), fan-out full reads
//   (parallel, delta off), and fan-out delta reads. Reports the mean
//   refresh latency per next() and the entries shipped; under low churn the
//   delta path should cut the per-next() refresh cost by >= 2x against the
//   serial baseline, because an unchanged fragment costs one near-empty
//   delta RPC instead of re-shipping its whole member list.
//
//   BM_ReadAllFanout: a single read_all as the fragment count grows across
//   hosts at 2..100ms, serial loop vs fan-out. Serial grows with the *sum*
//   of the per-fragment round-trips; fan-out with their *max*.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace weakset::bench {
namespace {

/// The pre-fan-out baseline: membership assembled by one snapshot RPC per
/// fragment, issued sequentially. Everything else delegates to the real
/// RepoSetView so iteration behaviour is identical.
class SerialReadView final : public SetView {
 public:
  SerialReadView(RepositoryClient& client, CollectionId id)
      : inner_(client, id) {}

  Task<Result<std::vector<ObjectRef>>> read_members() override {
    RepositoryClient& client = inner_.client();
    Simulator& sim = client.repo().sim();
    const SimTime start = sim.now();
    const std::size_t fragments =
        client.repo().meta(inner_.collection()).fragment_count();
    std::vector<ObjectRef> all;
    for (std::size_t f = 0; f < fragments; ++f) {
      auto reply = co_await client.read_fragment(inner_.collection(), f);
      if (!reply) co_return std::move(reply).error();
      auto members = std::move(reply).value().take_members();
      members_shipped += members.size();
      all.insert(all.end(), members.begin(), members.end());
    }
    ++reads;
    read_time = read_time + (sim.now() - start);
    co_return all;
  }

  Task<Result<std::vector<ObjectRef>>> snapshot_atomic(
      std::function<void()> on_cut) override {
    return inner_.snapshot_atomic(std::move(on_cut));
  }
  Task<Result<void>> freeze() override { return inner_.freeze(); }
  Task<void> unfreeze() override { return inner_.unfreeze(); }
  Task<Result<void>> pin_grow_only() override {
    return inner_.pin_grow_only();
  }
  Task<void> unpin_grow_only() override { return inner_.unpin_grow_only(); }
  [[nodiscard]] bool is_reachable(ObjectRef ref) const override {
    return inner_.is_reachable(ref);
  }
  [[nodiscard]] std::optional<Duration> distance(
      ObjectRef ref) const override {
    return inner_.distance(ref);
  }
  Task<Result<VersionedValue>> fetch(ObjectRef ref) override {
    return inner_.fetch(ref);
  }
  Task<std::vector<Result<VersionedValue>>> fetch_many(
      std::vector<ObjectRef> refs) override {
    return inner_.fetch_many(std::move(refs));
  }
  [[nodiscard]] Simulator& sim() override { return inner_.sim(); }

  Duration read_time = Duration::zero();
  std::uint64_t reads = 0;
  std::uint64_t members_shipped = 0;

 private:
  RepoSetView inner_;
};

enum class Mode { kSerialFull, kFanoutFull, kFanoutDelta };

void BM_MembershipRefresh(benchmark::State& state) {
  const auto mode = static_cast<Mode>(state.range(0));
  const int churn_level = static_cast<int>(state.range(1));
  const int n = 1024;
  const int fragments = 4;
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 4;
    config.near = Duration::millis(2);
    config.far = Duration::millis(8);
    config.mesh = Duration::millis(10);
    World world{config};
    const CollectionId coll = world.make_collection(n, fragments);
    ClientOptions copts;
    copts.delta_reads = mode == Mode::kFanoutDelta;
    RepositoryClient client{*world.repo, world.client_node, copts};

    if (churn_level > 0) {
      const Duration mean =
          churn_level == 1 ? Duration::millis(50) : Duration::millis(5);
      world.spawn_churn(coll, mean, 0.3,
                        world.sim.now() + Duration::millis(600), 42);
    }

    SerialReadView serial_view{client, coll};
    RepoSetView fanout_view{client, coll};
    SetView& view =
        mode == Mode::kSerialFull
            ? static_cast<SetView&>(serial_view)
            : static_cast<SetView&>(fanout_view);

    const std::uint64_t calls_before = world.net->stats().calls;
    const SimTime start = world.sim.now();
    auto iterator = make_elements_iterator(view, Semantics::kFig6Optimistic);
    const DrainResult result = run_task(world.sim, drain(*iterator));
    assert(result.finished());

    state.counters["iterate_ms"] = (world.sim.now() - start).as_millis();
    state.counters["yields"] = static_cast<double>(result.count());
    state.counters["rpcs"] =
        static_cast<double>(world.net->stats().calls - calls_before);
    state.counters["churn_adds"] = static_cast<double>(world.churn_adds);
    state.counters["churn_removes"] =
        static_cast<double>(world.churn_removes);

    // The headline metric: mean membership refresh latency per next().
    if (mode == Mode::kSerialFull) {
      state.counters["refresh_ms_per_next"] =
          serial_view.reads == 0
              ? 0.0
              : serial_view.read_time.as_millis() /
                    static_cast<double>(serial_view.reads);
      state.counters["membership_reads"] =
          static_cast<double>(serial_view.reads);
      state.counters["members_shipped"] =
          static_cast<double>(serial_view.members_shipped);
      state.counters["ops_shipped"] = 0;
      state.counters["full_fragments"] =
          static_cast<double>(serial_view.reads) * fragments;
      state.counters["delta_fragments"] = 0;
    } else {
      const ClientReadStats& stats = client.read_stats();
      state.counters["refresh_ms_per_next"] =
          stats.read_alls == 0
              ? 0.0
              : stats.read_all_time.as_millis() /
                    static_cast<double>(stats.read_alls);
      state.counters["membership_reads"] =
          static_cast<double>(stats.read_alls);
      state.counters["members_shipped"] =
          static_cast<double>(stats.members_shipped);
      state.counters["ops_shipped"] = static_cast<double>(stats.ops_shipped);
      state.counters["full_fragments"] =
          static_cast<double>(stats.fragment_reads_full);
      state.counters["delta_fragments"] =
          static_cast<double>(stats.fragment_reads_delta);
    }
  }
}
// mode: 0 = serial full, 1 = fan-out full, 2 = fan-out delta.
// churn: 0 = frozen set, 1 = low (mean 50ms), 2 = high (mean 5ms).
BENCHMARK(BM_MembershipRefresh)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ReadAllFanout(benchmark::State& state) {
  const int fragments = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 8;
    config.near = Duration::millis(2);
    config.far = Duration::millis(100);
    World world{config};
    const CollectionId coll = world.make_collection(64, fragments);
    ClientOptions copts;
    copts.delta_reads = false;  // isolate the fan-out effect
    RepositoryClient client{*world.repo, world.client_node, copts};

    // Serial loop: one fragment round-trip after another (sum of RTTs).
    std::uint64_t calls_before = world.net->stats().calls;
    SimTime start = world.sim.now();
    const auto serial = run_task(
        world.sim,
        [](RepositoryClient& c, CollectionId id, int frags)
            -> Task<Result<std::size_t>> {
          std::size_t total = 0;
          for (int f = 0; f < frags; ++f) {
            auto reply =
                co_await c.read_fragment(id, static_cast<std::size_t>(f));
            if (!reply) co_return std::move(reply).error();
            total += reply.value().members().size();
          }
          co_return total;
        }(client, coll, fragments));
    assert(serial.has_value() && serial.value() == 64u);
    (void)serial;
    state.counters["serial_ms"] = (world.sim.now() - start).as_millis();
    state.counters["serial_rpcs"] =
        static_cast<double>(world.net->stats().calls - calls_before);

    // Fan-out: all fragment RPCs in flight together (max of RTTs).
    calls_before = world.net->stats().calls;
    start = world.sim.now();
    const auto fanout = run_task(
        world.sim, [](RepositoryClient& c, CollectionId id)
                       -> Task<Result<std::vector<ObjectRef>>> {
          co_return co_await c.read_all(id);
        }(client, coll));
    assert(fanout.has_value() && fanout.value().size() == 64u);
    (void)fanout;
    state.counters["fanout_ms"] = (world.sim.now() - start).as_millis();
    state.counters["fanout_rpcs"] =
        static_cast<double>(world.net->stats().calls - calls_before);
  }
}
BENCHMARK(BM_ReadAllFanout)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
