// E14 — durability cost and recovery time: what the per-node WAL +
// checkpoint engine (DESIGN.md decision 11) charges at run time and how fast
// an amnesia-crashed node comes back, as the two knobs sweep:
//
//   checkpoint_interval: longer intervals write fewer checkpoints but leave
//   a longer WAL tail to replay at recovery — the headline tradeoff
//   (recovery_ms and ops_replayed should grow with the interval, checkpoints
//   and checkpoint_bytes shrink).
//
//   fsync_interval: the group-commit window. 0 pays one fsync per append;
//   wider windows batch appends into fewer fsyncs at the price of a longer
//   durable-ack wait for the clients.
//
// One scenario per cell: a 2-server world (fragment primary + replica),
// strict durable acks, 256 seeded members, ~250 scripted RPC mutations of
// churn, then an amnesia crash of the primary and a restart. All quantities
// come from the wal.* telemetry as before/after deltas, so the numbers are
// exactly this cell's — the process-global registry also accumulates the
// full export for BENCH_recovery.json.

#include <benchmark/benchmark.h>

#include <cassert>

#include "bench_common.hpp"

namespace weakset::bench {
namespace {

void BM_RecoveryTradeoff(benchmark::State& state) {
  const auto checkpoint_ms = static_cast<int>(state.range(0));
  const auto fsync_ms = static_cast<int>(state.range(1));
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 2;
    config.near = Duration::millis(2);
    config.far = Duration::millis(5);
    config.mesh = Duration::millis(5);
    config.server_options.durability.durable_acks = true;
    config.server_options.durability.fsync_interval =
        Duration::millis(fsync_ms);
    config.server_options.durability.checkpoint_interval =
        Duration::millis(checkpoint_ms);
    obs::MetricsRegistry& reg = obs::global();
    const auto hist_sum = [&reg](const char* name) -> std::int64_t {
      const obs::Histogram* h = reg.histogram(name);
      return h == nullptr ? 0 : h->sum();
    };
    // Run-time durability cost: everything the engine wrote between world
    // start and the crash (seeding + churn).
    const std::uint64_t fsyncs_before = reg.counter("wal.fsyncs");
    const std::uint64_t appends_before = reg.counter("wal.appends");
    const std::uint64_t checkpoints_before = reg.counter("wal.checkpoints");
    const std::int64_t ckpt_bytes_before = hist_sum("wal.checkpoint_bytes");

    World world{config};
    const CollectionId coll = world.make_collection(256, 1);
    world.repo->add_replica(coll, 0, world.servers[1]);

    // Membership mutations through the RPC client, all durably acked before
    // the crash window opens.
    world.spawn_churn(coll, Duration::millis(1), 0.3,
                      SimTime{} + Duration::millis(490), 42);
    world.sim.run_until(SimTime{} + Duration::millis(500));

    state.counters["fsyncs"] =
        static_cast<double>(reg.counter("wal.fsyncs") - fsyncs_before);
    state.counters["wal_appends"] =
        static_cast<double>(reg.counter("wal.appends") - appends_before);
    state.counters["checkpoints"] = static_cast<double>(
        reg.counter("wal.checkpoints") - checkpoints_before);
    state.counters["checkpoint_kb"] =
        static_cast<double>(hist_sum("wal.checkpoint_bytes") -
                            ckpt_bytes_before) /
        1024.0;

    // Recovery side: snapshot at the crash instant.
    const std::uint64_t replayed_before = reg.counter("wal.ops_replayed");
    const std::uint64_t lost_before = reg.counter("wal.records_lost");
    const std::int64_t recovery_ns_before = hist_sum("wal.recovery");

    world.topo.crash(world.servers[0], Topology::CrashKind::kAmnesia);
    world.sim.run_until(SimTime{} + Duration::millis(520));
    world.topo.restart(world.servers[0]);
    world.sim.run_until(SimTime{} + Duration::millis(800));

    // The recovered primary serves the full durable membership again.
    RepositoryClient client{*world.repo, world.client_node};
    const auto members = run_task(
        world.sim,
        [](RepositoryClient& c,
           CollectionId id) -> Task<Result<std::vector<ObjectRef>>> {
          co_return co_await c.read_all(id);
        }(client, coll));
    assert(members.has_value());

    state.counters["recovery_ms"] =
        static_cast<double>(hist_sum("wal.recovery") - recovery_ns_before) /
        1e6;
    state.counters["ops_replayed"] =
        static_cast<double>(reg.counter("wal.ops_replayed") - replayed_before);
    state.counters["records_lost"] =
        static_cast<double>(reg.counter("wal.records_lost") - lost_before);
    state.counters["members_after"] =
        static_cast<double>(members.value().size());
    state.counters["churn_adds"] = static_cast<double>(world.churn_adds);
    state.counters["churn_removes"] =
        static_cast<double>(world.churn_removes);
  }
}
// checkpoint_interval ms x fsync_interval ms (0 = fsync every append).
BENCHMARK(BM_RecoveryTradeoff)
    ->ArgsProduct({{25, 100, 400}, {0, 2, 10}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
