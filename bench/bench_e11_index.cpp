// E11 — indexed archives: the WAIS-style substrate. When does a per-node
// inverted index beat the sweep scan for the paper's query workloads
// ("papers by a particular author")?
//
// Corpus-size sweep; each trial runs the same single-token CONTAINS query
// through (a) the sweep-only scan service and (b) the indexed scan service
// (first query pays the lazy index build, second is pure lookup).
//
// Expected shape: sweep latency linear in corpus size; indexed steady-state
// latency tracks the (small) result set, beating the sweep by orders of
// magnitude at large corpora; the build cost equals roughly one sweep and
// amortises after the first query.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "fs/dist_fs.hpp"
#include "query/query_set.hpp"
#include "query/scan.hpp"

namespace weakset::bench {
namespace {

constexpr const char* kAuthors[] = {"wing", "steere", "garlan", "liskov"};

void populate_archive(World& world, int corpus) {
  DistFileSystem fs{*world.repo};
  Rng rng{world.topo.node_count() + static_cast<std::uint64_t>(corpus)};
  for (int i = 0; i < corpus; ++i) {
    const char* author = kAuthors[rng.uniform(4)];
    fs.create_unlinked_file(world.servers[0], "paper" + std::to_string(i),
                            "a paper by " + std::string(author) +
                                " about weak consistency number " +
                                std::to_string(i));
  }
}

Duration run_query(World& world) {
  RepositoryClient client{*world.repo, world.client_node};
  QuerySetView view{client, PredicateSpec::contains("wing"),
                    {world.servers[0]}};
  const SimTime start = world.sim.now();
  const auto members = run_task(
      world.sim, [](QuerySetView& q) -> Task<Result<std::vector<ObjectRef>>> {
        co_return co_await q.read_members();
      }(view));
  assert(members.has_value());
  (void)members;
  return world.sim.now() - start;
}

void BM_SweepScan(benchmark::State& state) {
  const int corpus = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 1;
    World world{config};
    populate_archive(world, corpus);
    QueryService service{*world.repo};
    service.install_all();
    state.counters["query_ms"] = run_query(world).as_millis();
  }
}
BENCHMARK(BM_SweepScan)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_IndexedScan(benchmark::State& state) {
  const int corpus = static_cast<int>(state.range(0));
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 1;
    World world{config};
    populate_archive(world, corpus);
    IndexedQueryService service{*world.repo};
    service.install_all();
    state.counters["first_query_ms"] = run_query(world).as_millis();
    state.counters["steady_query_ms"] = run_query(world).as_millis();
    state.counters["rebuilds"] = static_cast<double>(service.rebuilds());
  }
}
BENCHMARK(BM_IndexedScan)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
