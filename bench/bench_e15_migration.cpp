// E15 — dynamic placement: what a live fragment migration costs, and what
// load-aware rebalancing buys on a skewed topology (DESIGN.md decision 12).
//
// Two experiments:
//
//   (1) Migration cost: one live move of an n-member fragment while churn
//   keeps mutating it and a fig6 iterator drains right through the handoff.
//   Reports the transfer volume (checkpoint-codec bytes, chunks, catch-up
//   rounds), the move's simulated duration, and the conformance verdict —
//   the iteration must finish with zero Figure 6 violations.
//
//   (2) Rebalancing policies: a 4-server world whose client-to-server
//   latency ramps 2ms -> 100ms. An immovable hot tenant (replicated, so the
//   engine refuses to move it) pins read load on the FAR server, and three
//   movable collections start there too. Open-loop readers measure read_all
//   latency before the rebalancer starts and after it has converged:
//   policy=none keeps p95 flat at the far-server cost, least-loaded drains
//   the movable fragments onto idle (nearer) nodes, locality pulls them all
//   the way to the reader's closest server. Same seed across policies — the
//   policy is the only difference.
//
// Expected shape: (1) migration_kb and chunks grow linearly with n while
// violations stay 0; (2) p95_after_ms: none ≈ p95_before_ms, least-loaded
// clearly below it, locality lowest.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "placement/directory.hpp"
#include "placement/migration.hpp"
#include "placement/rebalancer.hpp"

namespace weakset::bench {
namespace {

double p95_ms(std::vector<Duration> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = (samples.size() - 1) * 95 / 100;
  return static_cast<double>(samples[idx].count_nanos()) / 1e6;
}

std::int64_t hist_sum(const obs::MetricsRegistry& reg, const char* name) {
  const obs::Histogram* h = reg.histogram(name);
  return h == nullptr ? 0 : h->sum();
}

void BM_MigrationCost(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    obs::MetricsRegistry& reg = obs::global();
    const std::uint64_t chunks_before =
        reg.counter("placement.chunks_streamed");
    const std::uint64_t rounds_before = reg.counter("placement.catchup_rounds");
    const std::int64_t bytes_before =
        hist_sum(reg, "placement.migration_bytes");
    const std::int64_t time_before = hist_sum(reg, "placement.migration_time");

    WorldConfig config;
    config.servers = 4;
    World world{config};
    std::vector<std::unique_ptr<placement::MigrationEngine>> engines;
    for (const NodeId node : world.servers) {
      engines.push_back(
          std::make_unique<placement::MigrationEngine>(*world.repo, node));
    }
    const CollectionId coll = world.make_collection(n, 1);
    spec::TimelineProbe probe{*world.repo, coll};

    // Churn keeps the fragment mutating while its snapshot streams, so the
    // catch-up loop has real work and the handoff dual-applies live ops.
    world.spawn_churn(coll, Duration::millis(2), /*remove_bias=*/0.3,
                      SimTime{} + Duration::millis(600), config.seed ^ 0xe15);

    // The move: fragment 0 rehomes servers[0] -> servers[1] at 50ms, right
    // under the iterator below.
    auto moved = std::make_shared<std::optional<Result<std::uint64_t>>>();
    world.sim.schedule(Duration::millis(50), [&world, &engines, coll, moved] {
      world.sim.spawn(
          [](placement::MigrationEngine& engine, CollectionId id,
             NodeId target,
             std::shared_ptr<std::optional<Result<std::uint64_t>>> out)
              -> Task<void> {
            *out = co_await engine.migrate(id, 0, target);
          }(*engines[0], coll, world.servers[1], moved));
    });

    RepositoryClient client{*world.repo, world.client_node};
    WeakSet set{client, coll};
    spec::RepoGroundTruth truth{*world.repo, coll, world.client_node};
    spec::TraceRecorder recorder{truth};
    IteratorOptions options;
    options.recorder = &recorder;
    options.retry = RetryPolicy{500, Duration::millis(25)};
    auto iterator = set.elements(Semantics::kFig6Optimistic, options);
    const DrainResult result = run_task(world.sim, drain(*iterator));
    world.sim.run_until(SimTime{} + Duration::millis(1200));

    assert(moved->has_value());
    state.counters["members"] = n;
    state.counters["committed"] =
        moved->has_value() && (*moved)->has_value() ? 1 : 0;
    state.counters["migration_ms"] =
        static_cast<double>(hist_sum(reg, "placement.migration_time") -
                            time_before) /
        1e6;
    state.counters["migration_kb"] =
        static_cast<double>(hist_sum(reg, "placement.migration_bytes") -
                            bytes_before) /
        1024.0;
    state.counters["chunks"] = static_cast<double>(
        reg.counter("placement.chunks_streamed") - chunks_before);
    state.counters["catchup_rounds"] = static_cast<double>(
        reg.counter("placement.catchup_rounds") - rounds_before);
    state.counters["yields"] = static_cast<double>(result.count());
    state.counters["returned"] = result.finished() ? 1 : 0;
    state.counters["fig6_violations"] = static_cast<double>(
        spec::check_fig6(recorder.finish(), probe.timeline())
            .violation_count());
  }
}
BENCHMARK(BM_MigrationCost)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_RebalancePolicies(benchmark::State& state) {
  static constexpr const char* kPolicies[] = {"none", "least-loaded",
                                              "locality"};
  const placement::RebalancePolicy policy = *placement::parse_policy(
      kPolicies[static_cast<std::size_t>(state.range(0))]);
  for (auto _ : state) {
    obs::MetricsRegistry& reg = obs::global();
    const std::uint64_t commits_before =
        reg.counter("placement.migrations_committed");
    const std::uint64_t bumps_before =
        reg.counter("placement.dir.epoch_bumps");
    const std::uint64_t heals_before =
        reg.counter("store.client.wrong_epoch_retries");
    const std::int64_t bytes_before =
        hist_sum(reg, "placement.migration_bytes");

    WorldConfig config;
    config.servers = 4;  // client latency ramp: 2ms, ~35ms, ~68ms, 100ms
    config.mesh = Duration::millis(10);
    World world{config};
    const NodeId far_node = world.servers[3];
    std::vector<std::unique_ptr<placement::MigrationEngine>> engines;
    for (const NodeId node : world.servers) {
      engines.push_back(
          std::make_unique<placement::MigrationEngine>(*world.repo, node));
    }
    placement::DirectoryService directory{*world.repo, world.servers[0]};

    const auto make_on = [&world](NodeId home, int members) {
      const CollectionId id = world.repo->create_collection({home});
      for (int i = 0; i < members; ++i) {
        const ObjectRef ref = world.repo->create_object(
            world.servers[static_cast<std::size_t>(i) % world.servers.size()],
            "m" + std::to_string(i));
        world.repo->seed_member(id, ref);
      }
      return id;
    };
    // The immovable hot tenant: replicated, so the migration engine refuses
    // to move it — its read load keeps the far node hot, which is what
    // pushes the movable neighbours away under least-loaded.
    const CollectionId tenant = make_on(far_node, 32);
    world.repo->add_replica(tenant, 0, world.servers[2]);
    std::vector<CollectionId> managed;
    for (int c = 0; c < 3; ++c) managed.push_back(make_on(far_node, 24));

    placement::RebalancerOptions rb;
    rb.policy = policy;
    rb.interval = Duration::millis(100);
    rb.min_window_load = 1;
    placement::Rebalancer rebalancer{*world.repo, world.client_node, rb};
    rebalancer.manage(tenant);  // load visible, fragment immovable
    for (const CollectionId id : managed) rebalancer.manage(id);
    // Clean before-window: the rebalancer only starts at 600ms.
    world.sim.schedule(Duration::millis(600), [&rebalancer] {
      rebalancer.start();
    });

    // Open-loop readers (fixed issue rate, latency-independent — a
    // closed loop would read the near fragments more, skewing the load the
    // policies see). One detached read task per period tick.
    const SimTime until = SimTime{} + Duration::seconds(3);
    struct Sample {
      SimTime start;
      Duration latency;
    };
    const auto one_read = [](Simulator& sim, RepositoryClient& client,
                             CollectionId id,
                             std::vector<Sample>* samples) -> Task<void> {
      const SimTime t0 = sim.now();
      const auto members = co_await client.read_all(id);
      if (members && samples != nullptr) {
        samples->push_back(Sample{t0, sim.now() - t0});
      }
    };
    const auto open_loop = [&world, until, one_read](
                               RepositoryClient& client, CollectionId id,
                               Duration period,
                               std::vector<Sample>* samples) -> Task<void> {
      while (world.sim.now() < until) {
        co_await world.sim.delay(period);
        if (world.sim.now() >= until) co_return;
        world.sim.spawn(one_read(world.sim, client, id, samples));
      }
    };

    // Tenant traffic: primary-only so the load lands on the far node, not
    // the replica; unmeasured (the tenant never moves).
    ClientOptions tenant_options;
    tenant_options.read_policy = ReadPolicy::kPrimaryOnly;
    tenant_options.delta_reads = false;
    RepositoryClient tenant_reader{*world.repo, world.client_node,
                                   tenant_options};
    world.sim.spawn(
        open_loop(tenant_reader, tenant, Duration::millis(4), nullptr));

    // Measured traffic: directory-attached (stale views heal via
    // WrongEpoch), one client + sample log per managed collection.
    placement::DirectoryClient dir_client{*world.repo, world.client_node,
                                          directory.node()};
    std::vector<std::unique_ptr<RepositoryClient>> readers;
    std::vector<std::unique_ptr<std::vector<Sample>>> samples;
    for (const CollectionId id : managed) {
      ClientOptions options;
      options.directory = &dir_client;
      options.delta_reads = false;  // concurrent open-loop reads share the
                                    // client; keep each read independent
      readers.push_back(std::make_unique<RepositoryClient>(
          *world.repo, world.client_node, options));
      samples.push_back(std::make_unique<std::vector<Sample>>());
      world.sim.spawn(open_loop(*readers.back(), id, Duration::millis(10),
                                samples.back().get()));
    }

    world.sim.run_until(until);
    rebalancer.stop();
    dir_client.stop();
    world.sim.run_until(until + Duration::millis(400));  // drain in-flight

    // Before: the rebalancer had not started. After: it has converged —
    // moves run one at a time through a control plane that sits a 100ms hop
    // from the far server, so three sequential migrations commit around
    // 1.9s; 2.2s leaves slack.
    std::vector<Duration> before, after;
    for (const auto& log : samples) {
      for (const Sample& sample : *log) {
        const Duration at = sample.start - SimTime{};
        if (at < Duration::millis(600)) {
          before.push_back(sample.latency);
        } else if (at >= Duration::millis(2200)) {
          after.push_back(sample.latency);
        }
      }
    }
    state.counters["p95_before_ms"] = p95_ms(before);
    state.counters["p95_after_ms"] = p95_ms(after);
    state.counters["moves"] =
        static_cast<double>(rebalancer.moves_committed());
    state.counters["migrations_committed"] = static_cast<double>(
        reg.counter("placement.migrations_committed") - commits_before);
    state.counters["epoch_bumps"] = static_cast<double>(
        reg.counter("placement.dir.epoch_bumps") - bumps_before);
    state.counters["wrong_epoch_heals"] = static_cast<double>(
        reg.counter("store.client.wrong_epoch_retries") - heals_before);
    state.counters["migration_kb"] =
        static_cast<double>(hist_sum(reg, "placement.migration_bytes") -
                            bytes_before) /
        1024.0;
  }
}
// 0 = none (baseline), 1 = least-loaded, 2 = locality.
BENCHMARK(BM_RebalancePolicies)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
