// FIG3 — Figure 3: immutable set with failures, pessimistic handling.
//
// Sweeps the fraction of member-holding servers partitioned away. The
// iterator must yield exactly the reachable members, then signal failure
// (or return when nothing is cut). Counters verify the yield count and the
// Figure 3 specification.
//
// Expected shape: yields fall linearly with the cut fraction; any nonzero
// cut produces `fails`; time-to-failure stays bounded (fast failure
// detection), zero spec violations.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace weakset::bench {
namespace {

void BM_Fig3UnderPartition(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int cut_percent = static_cast<int>(state.range(1));
  for (auto _ : state) {
    WorldConfig config;
    config.servers = 8;
    World world{config};
    const CollectionId coll = world.make_collection(n);
    RepositoryClient client{*world.repo, world.client_node};
    WeakSet set{client, coll};

    const int cut = config.servers * cut_percent / 100;
    std::vector<std::vector<NodeId>> groups(2);
    groups[0].push_back(world.client_node);
    for (int i = 0; i < config.servers; ++i) {
      groups[i < config.servers - cut ? 0 : 1].push_back(
          world.servers[static_cast<std::size_t>(i)]);
    }
    world.topo.partition(groups);

    spec::RepoGroundTruth truth{*world.repo, coll, world.client_node};
    spec::TraceRecorder recorder{truth};
    IteratorOptions options;
    options.recorder = &recorder;
    auto iterator = set.elements(Semantics::kFig3ImmutableFailAware, options);
    const SimTime start = world.sim.now();
    const DrainResult result = run_task(world.sim, drain(*iterator));

    state.counters["yields"] = static_cast<double>(result.count());
    state.counters["failed"] = result.failure().has_value() ? 1 : 0;
    state.counters["sim_ms"] = (world.sim.now() - start).as_millis();
    state.counters["fig3_violations"] = static_cast<double>(
        spec::check_fig3(recorder.finish()).violation_count());
  }
}
BENCHMARK(BM_Fig3UnderPartition)
    ->ArgsProduct({{64}, {0, 25, 50, 75}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace weakset::bench

WEAKSET_BENCHMARK_MAIN();
